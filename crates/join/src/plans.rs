//! Multi-round iterative binary-join plans (slides 53, 57, 97).
//!
//! "Most systems: iterative binary join plans" — the baseline every
//! one-round algorithm is compared against. A left-deep plan joins one
//! atom per round into a growing intermediate result, repartitioning both
//! sides by a hash of their shared variables (a Cartesian grid round when
//! they share none).
//!
//! On skew-free inputs each round costs `O(IN/p + |intermediate|/p)`
//! (slide 57); the danger is intermediate blow-up (slide 63), which the
//! one-round HyperCube and the Yannakakis-style [`crate::gym`] avoid in
//! their respective regimes.

use crate::common::{scatter, JoinRun, Tagged};
use parqp_data::paged::{IoCursor, RouteScan};
use parqp_data::{FastMap, Relation, Value};
use parqp_mpc::{metrics, trace, Cluster, Grid, HashFamily};
use parqp_query::{Query, Var};

const TAG_LEFT: u32 = 0;
const TAG_RIGHT: u32 = 1;

/// Combine the values at `positions` of `row` into one routing digest.
pub(crate) fn combined_hash(h: &HashFamily, row: &[Value], positions: &[usize]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &p in positions {
        acc = parqp_mpc::hash::splitmix64(acc ^ h.digest(0, row[p]));
    }
    acc
}

/// Execute `query` with a left-deep iterative binary-join plan over the
/// atoms in `order` (defaults to `0..n`). Runs `n−1` communication
/// rounds; returns per-server outputs in variable order `x₀ … x_{k-1}`.
///
/// # Panics
/// Panics on input shape mismatches or an invalid `order`.
pub fn binary_join_plan(
    query: &Query,
    rels: &[Relation],
    p: usize,
    seed: u64,
    order: Option<Vec<usize>>,
) -> JoinRun {
    assert_eq!(rels.len(), query.num_atoms(), "one relation per atom");
    for (a, r) in query.atoms().iter().zip(rels) {
        assert_eq!(a.arity(), r.arity(), "arity mismatch for atom {}", a.name);
    }
    let order = order.unwrap_or_else(|| (0..query.num_atoms()).collect());
    {
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..query.num_atoms()).collect::<Vec<_>>(),
            "order must permute atoms"
        );
    }

    let mut cluster = Cluster::new(p);
    let h = HashFamily::new(seed, 1);
    if metrics::is_enabled() {
        // A left-deep plan is n−1 hash-join rounds; per round the
        // paper charges IN_round/p, where IN_round can be dominated by
        // an intermediate result up to the AGM bound. The announced
        // load uses the base inputs (the skew-free per-round floor).
        let input: usize = rels.iter().map(Relation::len).sum();
        metrics::announce(&metrics::PaperBound::tuples(
            "binary_join_plan",
            input as f64 / p as f64,
            query.num_atoms().saturating_sub(1).max(1),
        ));
    }

    // Intermediate state: distributed rows + their variable schema.
    let first = order[0];
    let mut schema: Vec<Var> = query.atoms()[first].vars.clone();
    let mut parts: Vec<Vec<Vec<Value>>> = scatter(&rels[first], p)
        .into_iter()
        .map(Relation::into_messages)
        .collect();

    for &next in &order[1..] {
        let atom = &query.atoms()[next];
        let shared_left: Vec<usize> = (0..schema.len())
            .filter(|&i| atom.vars.contains(&schema[i]))
            .collect();
        let shared_right: Vec<usize> = shared_left
            .iter()
            .map(|&i| {
                atom.vars
                    .iter()
                    .position(|&v| v == schema[i])
                    .expect("shared")
            })
            .collect();
        let fresh_right: Vec<usize> = (0..atom.vars.len())
            .filter(|&pos| !schema.contains(&atom.vars[pos]))
            .collect();
        let right_parts = scatter(&rels[next], p);

        let inboxes = if shared_left.is_empty() {
            // Cartesian round on a product grid.
            let _span = trace::span("binary_plan/cartesian");
            let left_n: usize = parts.iter().map(Vec::len).sum();
            let (p1, p2) = crate::twoway::product_grid(left_n, rels[next].len(), p);
            let grid = Grid::new(vec![p1, p2]);
            let mut ex = cluster.exchange::<Tagged>();
            let mut idx = 0u64;
            for (sid, part) in parts.iter().enumerate() {
                ex.set_sender(sid);
                // Intermediate rows stream through the server's buffer
                // pool (one logical read per row) under a paged store.
                let mut io = IoCursor::new(sid);
                for row in part {
                    io.read(row.len());
                    let band = (h.digest(0, idx) % p1 as u64) as usize;
                    idx += 1;
                    for dest in grid.matching(&[Some(band), None]) {
                        ex.send(dest, Tagged::new(TAG_LEFT, row.clone()));
                    }
                }
            }
            idx = 0;
            for (sid, part) in right_parts.iter().enumerate() {
                ex.set_sender(sid);
                let scan = RouteScan::new(sid, part);
                for row in scan.iter() {
                    let band = (h.digest(0, !idx) % p2 as u64) as usize;
                    idx += 1;
                    for dest in grid.matching(&[None, Some(band)]) {
                        ex.send(dest, Tagged::new(TAG_RIGHT, row.to_vec()));
                    }
                }
            }
            let mut boxes = ex.finish();
            boxes.resize_with(p, Vec::new); // grid may use fewer than p servers
            boxes
        } else {
            let _span = trace::span("binary_plan/join");
            let mut ex = cluster.exchange::<Tagged>();
            for (sid, part) in parts.iter().enumerate() {
                ex.set_sender(sid);
                let mut io = IoCursor::new(sid);
                for row in part {
                    io.read(row.len());
                    let dest = (combined_hash(&h, row, &shared_left) % p as u64) as usize;
                    ex.send(dest, Tagged::new(TAG_LEFT, row.clone()));
                }
            }
            for (sid, part) in right_parts.iter().enumerate() {
                ex.set_sender(sid);
                let scan = RouteScan::new(sid, part);
                for row in scan.iter() {
                    let dest = (combined_hash(&h, row, &shared_right) % p as u64) as usize;
                    ex.send(dest, Tagged::new(TAG_RIGHT, row.to_vec()));
                }
            }
            ex.finish()
        };

        // Local join on the shared variables.
        parts = cluster.map(inboxes, |_, inbox| {
            let mut left_rows = Vec::new();
            let mut right_rows = Vec::new();
            for t in inbox {
                if t.tag == TAG_LEFT {
                    left_rows.push(t.row);
                } else {
                    right_rows.push(t.row);
                }
            }
            let mut table: FastMap<Vec<Value>, Vec<usize>> = FastMap::default();
            for (i, row) in right_rows.iter().enumerate() {
                let key: Vec<Value> = shared_right.iter().map(|&pos| row[pos]).collect();
                table.entry(key).or_default().push(i);
            }
            let mut out = Vec::new();
            for lrow in &left_rows {
                let key: Vec<Value> = shared_left.iter().map(|&i| lrow[i]).collect();
                if let Some(matches) = table.get(&key) {
                    for &i in matches {
                        let mut nrow = lrow.clone();
                        nrow.extend(fresh_right.iter().map(|&pos| right_rows[i][pos]));
                        out.push(nrow);
                    }
                }
            }
            out
        });
        schema.extend(fresh_right.iter().map(|&pos| atom.vars[pos]));
    }

    // Reorder columns to x₀ … x_{k-1}.
    assert_eq!(
        schema.len(),
        query.num_vars(),
        "plan must bind every variable"
    );
    let mut col_of_var = vec![0usize; query.num_vars()];
    for (i, &v) in schema.iter().enumerate() {
        col_of_var[v] = i;
    }
    let outputs = parts
        .into_iter()
        .map(|rows| {
            let mut rel = Relation::with_capacity(query.num_vars(), rows.len());
            let mut buf = vec![0; query.num_vars()];
            for row in rows {
                for (v, slot) in buf.iter_mut().enumerate() {
                    *slot = row[col_of_var[v]];
                }
                rel.push(&buf);
            }
            rel
        })
        .collect();
    JoinRun {
        outputs,
        report: cluster.report(),
    }
}

/// Size of the largest intermediate result of a left-deep plan, computed
/// serially (used by E09/E11 to report intermediate blow-up).
pub fn max_intermediate_size(query: &Query, rels: &[Relation], order: Option<Vec<usize>>) -> usize {
    let order = order.unwrap_or_else(|| (0..query.num_atoms()).collect());
    let mut schema = query.atoms()[order[0]].vars.clone();
    let mut rows: Vec<Vec<Value>> = rels[order[0]].iter().map(<[Value]>::to_vec).collect();
    let mut max = rows.len();
    for &next in &order[1..] {
        let atom = &query.atoms()[next];
        let shared_left: Vec<usize> = (0..schema.len())
            .filter(|&i| atom.vars.contains(&schema[i]))
            .collect();
        let shared_right: Vec<usize> = shared_left
            .iter()
            .map(|&i| {
                atom.vars
                    .iter()
                    .position(|&v| v == schema[i])
                    .expect("shared")
            })
            .collect();
        let fresh_right: Vec<usize> = (0..atom.vars.len())
            .filter(|&pos| !schema.contains(&atom.vars[pos]))
            .collect();
        let mut table: FastMap<Vec<Value>, Vec<usize>> = FastMap::default();
        let right_rows: Vec<&[Value]> = rels[next].iter().collect();
        for (i, row) in right_rows.iter().enumerate() {
            table
                .entry(shared_right.iter().map(|&posn| row[posn]).collect())
                .or_default()
                .push(i);
        }
        let mut out = Vec::new();
        for lrow in &rows {
            let key: Vec<Value> = shared_left.iter().map(|&i| lrow[i]).collect();
            if let Some(matches) = table.get(&key) {
                for &i in matches {
                    let mut nrow = lrow.clone();
                    nrow.extend(fresh_right.iter().map(|&posn| right_rows[i][posn]));
                    out.push(nrow);
                }
            }
        }
        rows = out;
        max = max.max(rows.len());
        schema.extend(fresh_right.iter().map(|&pos| atom.vars[pos]));
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_data::generate;
    use parqp_query::evaluate;

    #[test]
    fn chain_plan_matches_oracle() {
        let q = Query::chain(4);
        let rels: Vec<Relation> = (0..4)
            .map(|i| generate::uniform(2, 150, 30, i as u64))
            .collect();
        let run = binary_join_plan(&q, &rels, 8, 5, None);
        let expect = evaluate(&q, &rels);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        assert_eq!(run.output_size(), expect.len());
        assert_eq!(run.report.num_rounds(), 3, "n−1 rounds");
    }

    #[test]
    fn triangle_plan_matches_oracle() {
        let q = Query::triangle();
        let g = generate::random_symmetric_graph(40, 300, 8);
        let rels = vec![g.clone(), g.clone(), g];
        let run = binary_join_plan(&q, &rels, 16, 9, None);
        let expect = evaluate(&q, &rels);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        assert_eq!(run.report.num_rounds(), 2);
    }

    #[test]
    fn product_step_uses_cartesian_grid() {
        let q = Query::product();
        let r = generate::uniform(1, 80, 500, 1);
        let s = generate::uniform(1, 80, 500, 2);
        let run = binary_join_plan(&q, &[r, s], 16, 3, None);
        assert_eq!(run.output_size(), 80 * 80);
        let l = run.report.max_load_tuples() as f64;
        assert!(l < 100.0, "grid keeps the product round balanced: {l}");
    }

    #[test]
    fn custom_order_respected() {
        let q = Query::triangle();
        let g = generate::random_symmetric_graph(30, 200, 4);
        let rels = vec![g.clone(), g.clone(), g];
        let a = binary_join_plan(&q, &rels, 8, 7, Some(vec![2, 0, 1]));
        let b = binary_join_plan(&q, &rels, 8, 7, None);
        assert_eq!(a.gathered().canonical(), b.gathered().canonical());
    }

    #[test]
    fn semijoin_pair_plan() {
        let q = Query::semijoin_pair();
        let r = generate::unary_range(30);
        let s = generate::uniform(2, 200, 50, 6);
        let t = generate::unary_range(40);
        let rels = vec![r, s, t];
        let run = binary_join_plan(&q, &rels, 8, 11, None);
        let expect = evaluate(&q, &rels);
        assert_eq!(run.gathered().canonical(), expect.canonical());
    }

    #[test]
    fn intermediate_size_tracks_blowup() {
        // Chain whose first join explodes: every R1 tuple has A1 = 0 and
        // every R2 tuple has A1 = 0, so R1 ⋈ R2 is a full m × m product;
        // R3 then shrinks the result back down to m tuples.
        let m = 40u64;
        let r1 = Relation::from_rows(2, (0..m).map(|i| [i, 0]).collect::<Vec<_>>());
        let r2 = Relation::from_rows(2, (0..m).map(|j| [0, j]).collect::<Vec<_>>());
        let r3 = Relation::from_rows(2, [[5, 1]]);
        let q = Query::chain(3);
        let blow = max_intermediate_size(&q, &[r1.clone(), r2.clone(), r3.clone()], None);
        assert_eq!(blow, (m * m) as usize);
        let out = parqp_query::evaluate(&q, &[r1, r2, r3]);
        assert_eq!(out.len(), m as usize);
    }

    #[test]
    #[should_panic(expected = "order must permute")]
    fn invalid_order_rejected() {
        let q = Query::two_way();
        let r = generate::uniform(2, 10, 5, 1);
        binary_join_plan(&q, &[r.clone(), r], 4, 1, Some(vec![0, 0]));
    }
}
