//! Recovery strategies and their cost models.
//!
//! The simulator charges recovery *honestly*: every extra round and
//! every extra tuple a strategy needs after a fault lands in the same
//! `LoadReport` ledger the fault-free algorithm is measured by, so
//! fault-tolerance overhead is directly comparable against the paper's
//! fault-free `(L, r, C)` bounds. Steady-state costs (writing
//! checkpoints, keeping replicas warm) are *not* charged — only the
//! recovery path is; see DESIGN.md's "Fault tolerance" section.

/// How the cluster recovers from a [`Crash`](crate::FaultKind::Crash).
///
/// Drops and stragglers have fixed recovery mechanisms (retransmission
/// and speculative re-execution); the strategy only governs crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStrategy {
    /// Checkpoint-and-restart: every server snapshots its partition
    /// state every `every` rounds; on a crash the whole cluster rolls
    /// back to the last checkpoint and replays the rounds since. Costs
    /// up to `every` replayed rounds at their original loads.
    Checkpoint {
        /// Checkpoint interval in rounds (≥ 1; 0 is treated as 1).
        every: usize,
    },
    /// r-way replication: each partition is mirrored on `replicas`
    /// consecutive servers; a crash costs one redistribution round in
    /// which the replacement server re-fetches the replica group's
    /// cumulative partitions (load ≈ `replicas × IN/p`).
    Replication {
        /// Replication factor r (≥ 1; 0 is treated as 1).
        replicas: usize,
    },
}

impl Default for RecoveryStrategy {
    fn default() -> Self {
        RecoveryStrategy::Checkpoint { every: 4 }
    }
}

impl RecoveryStrategy {
    /// Stable lowercase name used in trace events and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryStrategy::Checkpoint { .. } => "checkpoint",
            RecoveryStrategy::Replication { .. } => "replication",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_checkpoint_every_4() {
        assert_eq!(
            RecoveryStrategy::default(),
            RecoveryStrategy::Checkpoint { every: 4 }
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            RecoveryStrategy::Checkpoint { every: 2 }.name(),
            "checkpoint"
        );
        assert_eq!(
            RecoveryStrategy::Replication { replicas: 3 }.name(),
            "replication"
        );
    }
}
