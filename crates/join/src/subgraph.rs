//! A vertex-at-a-time expansion join for subgraph (and general) queries —
//! the BiGJoin / TwinTwigJoin / PSgL family of slide 97.
//!
//! Instead of joining whole relations, the algorithm grows *partial
//! bindings* one query variable per round:
//!
//! 1. bindings start as the tuples of the first atom (free placement);
//! 2. to bind the next variable `v`, every binding is routed to the
//!    server holding the matching fragment of an **extender** atom
//!    (an atom containing `v`, hashed on its variables already bound)
//!    and extended with every consistent `v` value;
//! 3. atoms that become fully bound are applied as **filters**, one
//!    semijoin-style round each (route bindings by the atom's variables,
//!    check membership).
//!
//! For the triangle with order `x, y, z` this is exactly the 2-round
//! BiGJoin pipeline: seed with `R(x,y)`, extend `z` through `S(y,z)`,
//! filter with `T(z,x)`. Rounds are `O(k)`; communication is bounded by
//! the sizes of the partial-binding relations — worst-case-optimal for
//! a good variable order on many subgraph queries.
//!
//! Extension through an atom with *several* unbound variables projects
//! that atom onto (bound ∪ {v}) with duplicate elimination, so the
//! result follows **set semantics** (duplicate input tuples do not
//! multiply outputs; compare canonical forms).

use crate::common::{scatter, JoinRun, Tagged};
use crate::plans::combined_hash;
use parqp_data::{FastMap, FastSet, Relation, Value};
use parqp_mpc::{Cluster, HashFamily};
use parqp_query::{Query, Var};

/// Run the expansion join with the default variable order (the first
/// atom's variables, then the remaining variables in index order).
pub fn expansion_join(query: &Query, rels: &[Relation], p: usize, seed: u64) -> JoinRun {
    let mut order: Vec<Var> = query.atoms()[0].vars.clone();
    for v in 0..query.num_vars() {
        if !order.contains(&v) {
            order.push(v);
        }
    }
    expansion_join_with_order(query, rels, p, seed, &order)
}

/// Run the expansion join binding variables in the given order. The
/// order must start with the variables of some atom (the seed).
///
/// # Panics
/// Panics if the order is not a permutation of the variables, no atom's
/// variable set equals the order's prefix, or (mid-run) no extender atom
/// shares a bound variable — i.e. the order disconnects the query.
pub fn expansion_join_with_order(
    query: &Query,
    rels: &[Relation],
    p: usize,
    seed: u64,
    order: &[Var],
) -> JoinRun {
    assert_eq!(rels.len(), query.num_atoms(), "one relation per atom");
    {
        let mut sorted = order.to_vec();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..query.num_vars()).collect::<Vec<_>>(),
            "order must permute vars"
        );
    }
    let seed_atom = query
        .atoms()
        .iter()
        .position(|a| {
            a.vars.len() <= order.len() && {
                let prefix: FastSet<Var> = order[..a.vars.len()].iter().copied().collect();
                a.vars.iter().all(|v| prefix.contains(v))
            }
        })
        .expect("order must start with some atom's variables (the seed)");

    let mut cluster = Cluster::new(p);
    let h = HashFamily::new(seed ^ 0x5b9e_37c1, 2);

    // State: distributed bindings with schema `bound`.
    let mut bound: Vec<Var> = query.atoms()[seed_atom].vars.clone();
    let mut parts: Vec<Vec<Vec<Value>>> = scatter(&dedup(&rels[seed_atom]), p)
        .into_iter()
        .map(Relation::into_messages)
        .collect();
    let mut verified = vec![false; query.num_atoms()];
    verified[seed_atom] = true;

    for &v in &order[bound.len()..] {
        // Choose the extender: an atom containing v sharing the most
        // bound variables and the fewest other unbound ones.
        let extender = (0..query.num_atoms())
            .filter(|&j| query.atoms()[j].vars.contains(&v))
            .max_by_key(|&j| {
                let a = &query.atoms()[j];
                let shared = a.vars.iter().filter(|x| bound.contains(x)).count();
                let unbound_others = a
                    .vars
                    .iter()
                    .filter(|&&x| x != v && !bound.contains(&x))
                    .count();
                (shared, usize::MAX - unbound_others)
            })
            .expect("every variable appears in some atom");
        let atom = &query.atoms()[extender];
        let shared_vars: Vec<Var> = atom
            .vars
            .iter()
            .copied()
            .filter(|x| bound.contains(x))
            .collect();
        assert!(
            !shared_vars.is_empty(),
            "variable order disconnects the query at x{v}"
        );
        // Project the extender onto (shared ++ v), set semantics.
        let mut proj_cols: Vec<usize> = shared_vars
            .iter()
            .map(|sv| atom.vars.iter().position(|x| x == sv).expect("shared"))
            .collect();
        proj_cols.push(
            atom.vars
                .iter()
                .position(|&x| x == v)
                .expect("extender has v"),
        );
        let ext = rels[extender].project(&proj_cols).canonical();
        if proj_cols.len() == atom.vars.len() {
            verified[extender] = true;
        }

        // Extension round: bindings and extender fragments co-hash on the
        // shared variables.
        let bound_pos: Vec<usize> = shared_vars
            .iter()
            .map(|sv| bound.iter().position(|x| x == sv).expect("bound"))
            .collect();
        let mut ex = cluster.exchange::<Tagged>();
        for part in &parts {
            for b in part {
                let key: Vec<Value> = bound_pos.iter().map(|&i| b[i]).collect();
                let dest = (combined_hash(&h, &key, &(0..key.len()).collect::<Vec<_>>()) % p as u64)
                    as usize;
                ex.send(dest, Tagged::new(0, b.clone()));
            }
        }
        for part in scatter(&ext, p) {
            for row in part.iter() {
                let key = &row[..row.len() - 1];
                let dest = (combined_hash(&h, key, &(0..key.len()).collect::<Vec<_>>()) % p as u64)
                    as usize;
                ex.send(dest, Tagged::new(1, row.to_vec()));
            }
        }
        let inboxes = ex.finish();
        parts = inboxes
            .into_iter()
            .map(|inbox| {
                let mut table: FastMap<Vec<Value>, Vec<Value>> = FastMap::default();
                let mut bindings = Vec::new();
                for t in inbox {
                    if t.tag == 1 {
                        let (key, val) = t.row.split_at(t.row.len() - 1);
                        table.entry(key.to_vec()).or_default().push(val[0]);
                    } else {
                        bindings.push(t.row);
                    }
                }
                let mut out = Vec::new();
                for b in bindings {
                    let key: Vec<Value> = bound_pos.iter().map(|&i| b[i]).collect();
                    if let Some(vals) = table.get(&key) {
                        for &val in vals {
                            let mut nb = b.clone();
                            nb.push(val);
                            out.push(nb);
                        }
                    }
                }
                out
            })
            .collect();
        bound.push(v);

        // Filter rounds: any unverified atom that is now fully bound.
        for j in 0..query.num_atoms() {
            if verified[j] || !query.atoms()[j].vars.iter().all(|x| bound.contains(x)) {
                continue;
            }
            verified[j] = true;
            let fatom = &query.atoms()[j];
            let bpos: Vec<usize> = fatom
                .vars
                .iter()
                .map(|fv| bound.iter().position(|x| x == fv).expect("fully bound"))
                .collect();
            let filt = dedup(&rels[j]);
            let mut ex = cluster.exchange::<Tagged>();
            for part in &parts {
                for b in part {
                    let key: Vec<Value> = bpos.iter().map(|&i| b[i]).collect();
                    let dest = (combined_hash(&h, &key, &(0..key.len()).collect::<Vec<_>>())
                        % p as u64) as usize;
                    ex.send(dest, Tagged::new(0, b.clone()));
                }
            }
            for part in scatter(&filt, p) {
                for row in part.iter() {
                    let dest = (combined_hash(&h, row, &(0..row.len()).collect::<Vec<_>>())
                        % p as u64) as usize;
                    ex.send(dest, Tagged::new(1, row.to_vec()));
                }
            }
            let inboxes = ex.finish();
            parts = inboxes
                .into_iter()
                .map(|inbox| {
                    let mut members: FastSet<Vec<Value>> = FastSet::default();
                    let mut bindings = Vec::new();
                    for t in inbox {
                        if t.tag == 1 {
                            members.insert(t.row);
                        } else {
                            bindings.push(t.row);
                        }
                    }
                    bindings.retain(|b| {
                        let key: Vec<Value> = bpos.iter().map(|&i| b[i]).collect();
                        members.contains(&key)
                    });
                    bindings
                })
                .collect();
        }
    }
    assert!(verified.iter().all(|&x| x), "every atom must be verified");

    // Reorder to x₀ … x_{k-1}.
    let mut col_of_var = vec![0usize; query.num_vars()];
    for (i, &x) in bound.iter().enumerate() {
        col_of_var[x] = i;
    }
    let outputs = parts
        .into_iter()
        .map(|rows| {
            let mut rel = Relation::with_capacity(query.num_vars(), rows.len());
            let mut buf = vec![0; query.num_vars()];
            for row in rows {
                for (x, slot) in buf.iter_mut().enumerate() {
                    *slot = row[col_of_var[x]];
                }
                rel.push(&buf);
            }
            rel
        })
        .collect();
    JoinRun {
        outputs,
        report: cluster.report(),
    }
}

fn dedup(rel: &Relation) -> Relation {
    rel.canonical()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_data::generate;
    use parqp_query::evaluate;

    fn check(q: &Query, rels: &[Relation], p: usize) -> JoinRun {
        let run = expansion_join(q, rels, p, 7);
        let expect = evaluate(q, rels).canonical();
        assert_eq!(run.gathered().canonical(), expect, "{q}");
        run
    }

    #[test]
    fn triangle_two_rounds() {
        let g = generate::random_symmetric_graph(60, 500, 5);
        let q = Query::triangle();
        let run = check(&q, &[g.clone(), g.clone(), g], 16);
        // Seed R, extend z via S, filter T: 2 rounds — the BiGJoin shape.
        assert_eq!(run.report.num_rounds(), 2);
    }

    #[test]
    fn square_cycle() {
        let g = generate::random_symmetric_graph(40, 400, 9);
        let q = Query::cycle(4);
        let run = check(&q, &[g.clone(), g.clone(), g.clone(), g], 16);
        // Seed R1(x1,x2); extend x3 via R2; extend x4 via R3; filter R4.
        assert_eq!(run.report.num_rounds(), 3);
    }

    #[test]
    fn five_cycle() {
        let g = generate::random_symmetric_graph(25, 200, 11);
        let q = Query::cycle(5);
        check(&q, &[g.clone(), g.clone(), g.clone(), g.clone(), g], 8);
    }

    #[test]
    fn chain_and_star_acyclic() {
        let q = Query::chain(4);
        let rels: Vec<Relation> = (0..4)
            .map(|i| generate::uniform(2, 150, 30, 20 + i as u64))
            .collect();
        check(&q, &rels, 8);
        let q = Query::star(3);
        let rels: Vec<Relation> = (0..3)
            .map(|i| generate::uniform(2, 150, 30, 30 + i as u64))
            .collect();
        check(&q, &rels, 8);
    }

    #[test]
    fn custom_order_same_answer() {
        let g = generate::random_symmetric_graph(40, 300, 13);
        let q = Query::triangle();
        let rels = vec![g.clone(), g.clone(), g];
        let a = expansion_join_with_order(&q, &rels, 8, 3, &[1, 2, 0]);
        let b = expansion_join(&q, &rels, 8, 3);
        assert_eq!(a.gathered().canonical(), b.gathered().canonical());
    }

    #[test]
    fn set_semantics_on_duplicates() {
        let q = Query::triangle();
        let mut g = Relation::from_rows(2, [[1, 2], [2, 3], [3, 1]]);
        g.push(&[1, 2]); // duplicate edge
        let rels = vec![g.clone(), g.clone(), g];
        let run = expansion_join(&q, &rels, 4, 5);
        // Canonical triangle appears once per rotation, not multiplied.
        assert_eq!(run.gathered().canonical().len(), 3);
    }

    #[test]
    fn skewed_graph_still_correct() {
        let mut g = generate::random_symmetric_graph(50, 300, 17);
        for i in 0..100 {
            g.push(&[0, 100 + i]);
            g.push(&[100 + i, 0]);
        }
        let q = Query::triangle();
        check(&q, &[g.clone(), g.clone(), g], 16);
    }

    #[test]
    #[should_panic(expected = "order must permute")]
    fn bad_order_rejected() {
        let g = generate::uniform(2, 10, 5, 1);
        expansion_join_with_order(
            &Query::triangle(),
            &[g.clone(), g.clone(), g],
            4,
            1,
            &[0, 0, 1],
        );
    }
}
