//! MPC block LU decomposition (slide 127's "Other Results": Cholesky,
//! LU, QR…).
//!
//! The right-looking block algorithm without pivoting: partition `A`
//! into `H × H` blocks of side `n/H`, distribute block `(i,j)` to
//! processor `(i·H + j) mod p`, and for each step `k`:
//!
//! 1. the owner of `A_kk` factors it locally (`A_kk = L_kk · U_kk`) and
//!    sends the triangular factors to the step's row and column panels
//!    (one round);
//! 2. panel owners solve `L_ik = A_ik · U_kk⁻¹` and
//!    `U_kj = L_kk⁻¹ · A_kj` and broadcast their panels across the
//!    trailing submatrix (one round); every trailing owner updates
//!    `A_ij ← A_ij − L_ik · U_kj` locally.
//!
//! `2H` rounds total; per round a trailing processor receives at most a
//! handful of `(n/H)²`-element blocks — the same block-granularity
//! economics as the square-block multiplication. Without pivoting the
//! factorization requires nonsingular leading minors; use diagonally
//! dominant inputs (see [`Matrix`] helpers in the tests) as is standard
//! for distributed no-pivot LU.

use crate::dense::Matrix;
use parqp_data::FastMap;
use parqp_mpc::{Cluster, LoadReport, Weight};

/// An `nb × nb` block on the wire.
#[derive(Debug, Clone)]
struct BlockMsg {
    /// 0 = L panel block, 1 = U panel block, 2 = diagonal L, 3 = diagonal U.
    kind: u8,
    bi: usize,
    bj: usize,
    vals: Vec<f64>,
}

impl Weight for BlockMsg {
    fn words(&self) -> u64 {
        self.vals.len() as u64
    }
}

/// Result of the distributed factorization.
#[derive(Debug, Clone)]
pub struct LuRun {
    /// Unit lower-triangular factor.
    pub l: Matrix,
    /// Upper-triangular factor.
    pub u: Matrix,
    /// Communication ledger.
    pub report: LoadReport,
}

/// Serial dense LU without pivoting (the block kernel and test oracle).
///
/// # Panics
/// Panics if a zero pivot is encountered (use diagonally dominant input).
pub fn lu_serial(a: &Matrix) -> (Matrix, Matrix) {
    let n = a.n();
    let mut u = a.clone();
    let mut l = Matrix::zeros(n);
    for i in 0..n {
        l.set(i, i, 1.0);
    }
    for k in 0..n {
        let piv = u.get(k, k);
        assert!(piv.abs() > 1e-12, "zero pivot at {k}: input needs pivoting");
        for i in k + 1..n {
            let f = u.get(i, k) / piv;
            l.set(i, k, f);
            for j in k..n {
                let v = u.get(i, j) - f * u.get(k, j);
                u.set(i, j, v);
            }
        }
    }
    // Zero the (numerically tiny) strictly-lower part of U.
    for i in 0..n {
        for j in 0..i {
            u.set(i, j, 0.0);
        }
    }
    (l, u)
}

/// Solve `L · X = B` for X with unit-lower-triangular `L` (forward
/// substitution), all `nb × nb` row-major.
fn forward_solve(l: &[f64], b: &[f64], nb: usize) -> Vec<f64> {
    let mut x = b.to_vec();
    for i in 0..nb {
        for k in 0..i {
            let f = l[i * nb + k];
            if f != 0.0 {
                for j in 0..nb {
                    x[i * nb + j] -= f * x[k * nb + j];
                }
            }
        }
        // Unit diagonal: no division.
    }
    x
}

/// Solve `X · U = B` for X with upper-triangular `U` (column-wise back
/// substitution), all `nb × nb` row-major.
fn right_upper_solve(u: &[f64], b: &[f64], nb: usize) -> Vec<f64> {
    let mut x = b.to_vec();
    for j in 0..nb {
        let piv = u[j * nb + j];
        assert!(
            piv.abs() > 1e-12,
            "zero pivot in block: input needs pivoting"
        );
        for i in 0..nb {
            let mut v = x[i * nb + j];
            for k in 0..j {
                v -= x[i * nb + k] * u[k * nb + j];
            }
            x[i * nb + j] = v / piv;
        }
    }
    x
}

/// Distributed block LU on `p` processors with `h × h` blocking.
///
/// # Panics
/// Panics if `h` does not divide `n`, `p == 0`, or a zero pivot arises.
pub fn block_lu(a: &Matrix, h: usize, p: usize) -> LuRun {
    let n = a.n();
    assert!(h >= 1 && n.is_multiple_of(h), "h must divide n");
    assert!(p >= 1, "need at least one processor");
    let nb = n / h;
    let owner = |i: usize, j: usize| (i * h + j) % p;
    let mut cluster = Cluster::new(p);

    let block_of = |m: &Matrix, bi: usize, bj: usize| -> Vec<f64> {
        let mut out = Vec::with_capacity(nb * nb);
        for r in 0..nb {
            out.extend_from_slice(&m.row(bi * nb + r)[bj * nb..(bj + 1) * nb]);
        }
        out
    };
    // Working blocks, keyed (i, j), held by their owners.
    let mut blocks: Vec<FastMap<(usize, usize), Vec<f64>>> = vec![FastMap::default(); p];
    for i in 0..h {
        for j in 0..h {
            blocks[owner(i, j)].insert((i, j), block_of(a, i, j));
        }
    }
    let mut l_out = Matrix::zeros(n);
    let mut u_out = Matrix::zeros(n);
    for i in 0..n {
        l_out.set(i, i, 1.0);
    }

    for k in 0..h {
        // Round A: factor the diagonal block; send L_kk to the column
        // panel owners and U_kk to the row panel owners.
        let diag_owner = owner(k, k);
        let akk = blocks[diag_owner]
            .remove(&(k, k))
            .expect("diagonal block present");
        let (lkk, ukk) = {
            let m = Matrix::from_data(nb, akk);
            let (l, u) = lu_serial(&m);
            (block_to_vec(&l, nb), block_to_vec(&u, nb))
        };
        write_block(&mut l_out, k, k, nb, &lkk, true);
        write_block(&mut u_out, k, k, nb, &ukk, false);

        let mut ex = cluster.exchange::<BlockMsg>();
        for j in k + 1..h {
            // Self-sends are elided: the diagonal owner already holds
            // its factors (the `unwrap_or` fallbacks below).
            if owner(k, j) != diag_owner {
                ex.send(
                    owner(k, j),
                    BlockMsg {
                        kind: 3,
                        bi: k,
                        bj: k,
                        vals: lkk.clone(),
                    },
                );
            }
            if owner(j, k) != diag_owner {
                ex.send(
                    owner(j, k),
                    BlockMsg {
                        kind: 2,
                        bi: k,
                        bj: k,
                        vals: ukk.clone(),
                    },
                );
            }
        }
        let inboxes = ex.finish();
        let mut got_l: Vec<Option<Vec<f64>>> = vec![None; p];
        let mut got_u: Vec<Option<Vec<f64>>> = vec![None; p];
        for (proc, inbox) in inboxes.into_iter().enumerate() {
            for m in inbox {
                if m.kind == 3 {
                    got_l[proc] = Some(m.vals);
                } else {
                    got_u[proc] = Some(m.vals);
                }
            }
        }

        // Panel solves, then Round B: broadcast panels over the trailing
        // submatrix.
        let mut ex = cluster.exchange::<BlockMsg>();
        for j in k + 1..h {
            // U_kj = L_kk⁻¹ · A_kj at owner(k, j).
            let o = owner(k, j);
            let akj = blocks[o].remove(&(k, j)).expect("row panel block");
            let lkk_here = got_l[o].as_ref().unwrap_or(&lkk);
            let ukj = forward_solve(lkk_here, &akj, nb);
            write_block(&mut u_out, k, j, nb, &ukj, false);
            for i in k + 1..h {
                ex.send(
                    owner(i, j),
                    BlockMsg {
                        kind: 1,
                        bi: k,
                        bj: j,
                        vals: ukj.clone(),
                    },
                );
            }
            // L_jk = A_jk · U_kk⁻¹ at owner(j, k).
            let o = owner(j, k);
            let ajk = blocks[o].remove(&(j, k)).expect("column panel block");
            let ukk_here = got_u[o].as_ref().unwrap_or(&ukk);
            let ljk = right_upper_solve(ukk_here, &ajk, nb);
            write_block(&mut l_out, j, k, nb, &ljk, true);
            for jj in k + 1..h {
                ex.send(
                    owner(j, jj),
                    BlockMsg {
                        kind: 0,
                        bi: j,
                        bj: k,
                        vals: ljk.clone(),
                    },
                );
            }
        }
        let inboxes = ex.finish();

        // Trailing update: A_ij -= L_ik · U_kj.
        for (proc, inbox) in inboxes.into_iter().enumerate() {
            let mut l_panels: FastMap<usize, Vec<f64>> = FastMap::default();
            let mut u_panels: FastMap<usize, Vec<f64>> = FastMap::default();
            for m in inbox {
                if m.kind == 0 {
                    l_panels.insert(m.bi, m.vals);
                } else {
                    u_panels.insert(m.bj, m.vals);
                }
            }
            for ((i, j), acc) in blocks[proc].iter_mut() {
                if *i <= k || *j <= k {
                    continue;
                }
                let (Some(lik), Some(ukj)) = (l_panels.get(i), u_panels.get(j)) else {
                    continue;
                };
                for r in 0..nb {
                    for kk in 0..nb {
                        let f = lik[r * nb + kk];
                        if f == 0.0 {
                            continue;
                        }
                        for c in 0..nb {
                            acc[r * nb + c] -= f * ukj[kk * nb + c];
                        }
                    }
                }
            }
        }
    }
    LuRun {
        l: l_out,
        u: u_out,
        report: cluster.report(),
    }
}

fn block_to_vec(m: &Matrix, nb: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(nb * nb);
    for r in 0..nb {
        out.extend_from_slice(m.row(r));
    }
    out
}

fn write_block(dst: &mut Matrix, bi: usize, bj: usize, nb: usize, vals: &[f64], lower: bool) {
    for r in 0..nb {
        for c in 0..nb {
            let (gi, gj) = (bi * nb + r, bj * nb + c);
            // Keep L strictly lower + unit diagonal; U upper.
            let keep = if bi == bj {
                if lower {
                    r > c
                } else {
                    r <= c
                }
            } else {
                true
            };
            if keep {
                dst.set(gi, gj, vals[r * nb + c]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A random diagonally dominant matrix (no-pivot LU always exists).
    fn dominant(n: usize, seed: u64) -> Matrix {
        let mut a = Matrix::random(n, seed);
        for i in 0..n {
            a.add(i, i, n as f64 + 1.0);
        }
        a
    }

    fn reconstruct(l: &Matrix, u: &Matrix) -> Matrix {
        l.multiply(u)
    }

    #[test]
    fn serial_lu_reconstructs() {
        let a = dominant(12, 1);
        let (l, u) = lu_serial(&a);
        assert!(reconstruct(&l, &u).max_abs_diff(&a) < 1e-9);
        for i in 0..12 {
            assert_eq!(l.get(i, i), 1.0);
            for j in i + 1..12 {
                assert_eq!(l.get(i, j), 0.0, "L upper part");
            }
            for j in 0..i {
                assert_eq!(u.get(i, j), 0.0, "U lower part");
            }
        }
    }

    #[test]
    fn block_lu_matches_serial_various_shapes() {
        let a = dominant(12, 3);
        let (ls, us) = lu_serial(&a);
        for (h, p) in [(1usize, 1usize), (2, 4), (3, 9), (4, 5), (6, 36), (12, 16)] {
            let run = block_lu(&a, h, p);
            assert!(
                run.l.max_abs_diff(&ls) < 1e-8 && run.u.max_abs_diff(&us) < 1e-8,
                "h={h} p={p}"
            );
            assert!(reconstruct(&run.l, &run.u).max_abs_diff(&a) < 1e-8);
        }
    }

    #[test]
    fn rounds_are_two_per_step() {
        let a = dominant(16, 5);
        let run = block_lu(&a, 4, 16);
        assert_eq!(run.report.num_rounds(), 2 * 4);
    }

    #[test]
    fn per_round_load_is_block_scale() {
        let n = 24;
        let h = 6;
        let a = dominant(n, 7);
        let run = block_lu(&a, h, h * h);
        let nb = (n / h) as u64;
        // A trailing owner receives at most 2 blocks in the panel round
        // per (i, j) pair it owns at this p (= 1 pair): ≤ 2·nb² words,
        // and the broadcast round is bounded by the panel width.
        assert!(
            run.report.max_load_words() <= 2 * nb * nb * h as u64,
            "L = {}",
            run.report.max_load_words()
        );
    }

    #[test]
    #[should_panic(expected = "pivot")]
    fn singular_leading_minor_panics() {
        let mut a = Matrix::zeros(4);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(2, 2, 1.0);
        a.set(3, 3, 1.0);
        lu_serial(&a);
    }
}
