//! The `parqp` command-line tool. See [`parqp::cli`] for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parqp::cli::dispatch(&args) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
