//! # parqp-trace — deterministic round-level observability for the MPC simulator
//!
//! Every theorem the tutorial states is about *per-round, per-server*
//! communication load, but a [`LoadReport`](../parqp_mpc/stats/struct.LoadReport.html)
//! collapses a whole run into scalar summaries. This crate records the
//! run as a stream of structured [`TraceEvent`]s instead — round
//! boundaries, per-server receive loads, per-server send fan-out, grid
//! topology, and algorithm-supplied span labels — so skew, stragglers,
//! and round structure become visible and diffable.
//!
//! The trace is **fully deterministic**: the only clock is the logical
//! event sequence number (`seq`), assigned by the [`Recorder`] in
//! emission order. There is no wall time anywhere (PQ002/PQ003-clean),
//! so a fixed-seed run produces a byte-identical trace every time.
//!
//! ## Layering
//!
//! Only `parqp-mpc` *emits* communication events — the same accounting
//! monopoly that PQ104 enforces for `LoadReport` extends to the event
//! stream (lint rule PQ105). Algorithm crates may only open [`span`]s
//! (via the `parqp_mpc::trace` re-export), labelling phases like
//! `"hypercube/shuffle"`. Exporters and analyses consume a borrowed
//! [`Recorder`], never raw events, so downstream crates (`core`,
//! `bench`) stay out of the emission business entirely.
//!
//! ## Modules
//!
//! * [`event`] — the [`TraceEvent`] model and the [`TraceSink`] trait;
//! * [`recorder`] — the ring-buffered [`Recorder`], the thread-local
//!   sink registry ([`install`]/[`emit`]/[`span`]), and
//!   [`Recorder::capture`];
//! * [`export`] — [`export::jsonl`] and the Chrome `trace_event`
//!   exporter [`export::chrome_trace`] (loadable in Perfetto /
//!   `about://tracing`);
//! * [`analyze`] — per-round load reconstruction, max/p99/mean/skew
//!   summaries, load histograms, and the ASCII servers × rounds
//!   heatmap.

pub mod analyze;
pub mod event;
pub mod export;
pub mod recorder;

pub use event::{TraceEvent, TraceSink};
pub use recorder::{emit, install, is_enabled, span, Recorder, SinkGuard, Span};
