//! Fixture: determinism-clean file — aliases, annotations, test modules.

use parqp_data::{FastMap, FastSet};

pub fn counts() -> FastMap<u64, u64> {
    FastMap::default()
}

pub fn seen() -> FastSet<u64> {
    FastSet::default()
}

pub type Legacy = std::collections::HashMap<u64, u64>; // parqp-lint: allow(PQ001)

// A mention of HashMap in a comment is not a use of HashMap.
pub const DOC: &str = "prefer FastMap over HashMap";

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_only_usage_is_fine() {
        let _m: HashMap<u64, u64> = HashMap::new();
    }
}
