//! Exact data statistics: degrees, heavy hitters, join output size.
//!
//! The skew-resilient algorithms split values at the *heavy hitter*
//! threshold — degree ≥ `IN/p` in a two-way join (slide 29) or `N/p` per
//! relation in SkewHC (slide 47). Since the simulator holds all data in
//! memory we compute these statistics exactly; a real system would use
//! sampling, which only changes the constants in the analysis.

use crate::fasthash::FastMap;
use crate::relation::{Relation, Value};

/// Exact degree (occurrence count) of every value in column `col`.
pub fn degree_counts(rel: &Relation, col: usize) -> FastMap<Value, u64> {
    assert!(col < rel.arity(), "column out of range");
    let mut deg: FastMap<Value, u64> = FastMap::default();
    for row in rel.iter() {
        *deg.entry(row[col]).or_insert(0) += 1;
    }
    deg
}

/// Values whose degree in column `col` is **at least** `threshold`.
///
/// The paper's definition (slide 29): a heavy hitter is a value occurring
/// at least `IN/p` times. The result is sorted for determinism.
pub fn heavy_hitters(rel: &Relation, col: usize, threshold: u64) -> Vec<Value> {
    let mut out: Vec<Value> = degree_counts(rel, col)
        .into_iter()
        .filter_map(|(v, d)| (d >= threshold).then_some(v))
        .collect();
    out.sort_unstable();
    out
}

/// Heavy hitters of a value across two relations joined on
/// `r.col(r_col) = s.col(s_col)`: values heavy in *either* side, with the
/// threshold applied to the combined input size as on slide 29
/// ("occurs at least IN/p times in R or S").
pub fn join_heavy_hitters(
    r: &Relation,
    r_col: usize,
    s: &Relation,
    s_col: usize,
    threshold: u64,
) -> Vec<Value> {
    let mut heavy = heavy_hitters(r, r_col, threshold);
    heavy.extend(heavy_hitters(s, s_col, threshold));
    heavy.sort_unstable();
    heavy.dedup();
    heavy
}

/// Exact output cardinality of the equi-join `R ⋈_{R.r_col = S.s_col} S`:
/// `Σ_v deg_R(v) · deg_S(v)`, computed without materializing the join.
pub fn join_output_size(r: &Relation, r_col: usize, s: &Relation, s_col: usize) -> u64 {
    let dr = degree_counts(r, r_col);
    let ds = degree_counts(s, s_col);
    // Iterate over the smaller map.
    let (small, big) = if dr.len() <= ds.len() {
        (&dr, &ds)
    } else {
        (&ds, &dr)
    };
    small
        .iter()
        .map(|(v, d)| d * big.get(v).copied().unwrap_or(0))
        .sum()
}

/// The maximum degree in column `col` (0 for an empty relation).
pub fn max_degree(rel: &Relation, col: usize) -> u64 {
    degree_counts(rel, col).values().copied().max().unwrap_or(0)
}

/// Number of distinct values in column `col`.
pub fn distinct_count(rel: &Relation, col: usize) -> usize {
    degree_counts(rel, col).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        // column 0 degrees: 1→3, 2→1, 3→2
        Relation::from_rows(2, [[1, 10], [1, 11], [1, 12], [2, 10], [3, 10], [3, 13]])
    }

    #[test]
    fn degrees_exact() {
        let d = degree_counts(&sample(), 0);
        assert_eq!(d[&1], 3);
        assert_eq!(d[&2], 1);
        assert_eq!(d[&3], 2);
    }

    #[test]
    fn heavy_hitters_threshold_inclusive() {
        let r = sample();
        assert_eq!(heavy_hitters(&r, 0, 2), vec![1, 3]);
        assert_eq!(heavy_hitters(&r, 0, 3), vec![1]);
        assert_eq!(heavy_hitters(&r, 0, 4), Vec::<Value>::new());
    }

    #[test]
    fn join_heavy_union() {
        let r = sample();
        let s = Relation::from_rows(2, [[10, 2], [11, 2], [12, 2]]); // 2 heavy in s.col(1)
        let h = join_heavy_hitters(&r, 0, &s, 1, 2);
        assert_eq!(h, vec![1, 2, 3]);
    }

    #[test]
    fn output_size_matches_nested_loop() {
        let r = sample();
        let s = Relation::from_rows(2, [[1, 0], [1, 1], [3, 0], [9, 9]]);
        let brute = r
            .iter()
            .flat_map(|a| s.iter().map(move |b| (a, b)))
            .filter(|(a, b)| a[0] == b[0])
            .count() as u64;
        assert_eq!(join_output_size(&r, 0, &s, 0), brute);
        assert_eq!(brute, 3 * 2 + 2);
    }

    #[test]
    fn max_degree_and_distinct() {
        let r = sample();
        assert_eq!(max_degree(&r, 0), 3);
        assert_eq!(distinct_count(&r, 0), 3);
        assert_eq!(distinct_count(&r, 1), 4);
    }

    #[test]
    fn empty_relation_stats() {
        let r = Relation::new(2);
        assert_eq!(max_degree(&r, 0), 0);
        assert_eq!(distinct_count(&r, 0), 0);
        assert!(heavy_hitters(&r, 0, 1).is_empty());
    }
}
