//! # parqp-mpc — a deterministic simulator of the Massively Parallel Communication model
//!
//! The MPC model (slides 5–20 of the tutorial) is a simplified BSP model:
//!
//! * `p` shared-nothing servers hold the input, `O(IN/p)` tuples each;
//! * an algorithm runs in **rounds**; in each round every server performs
//!   arbitrary local computation and then exchanges messages with every
//!   other server (all-to-all communication);
//! * the two cost parameters are the **load** `L` — the maximum number of
//!   tuples (or words) received by any server in any round — and the
//!   number of **rounds** `r`. Total communication is `C = Σ` messages.
//!
//! This crate implements the model as an in-process simulator. Algorithms
//! keep per-server state in ordinary `Vec`s (index = server id) and use
//! [`Cluster::exchange`] to perform one communication round. The cluster
//! records, for every round, exactly how many tuples and words each server
//! received, from which [`LoadReport`] derives `L`, `r` and `C` — the very
//! quantities every theorem in the paper is stated in.
//!
//! The simulator is fully deterministic: all hashing goes through the
//! seeded [`hash::HashFamily`], so repeated runs produce identical loads.
//!
//! ## Modules
//!
//! * [`cluster`] — the cluster, exchanges, and round accounting;
//! * [`error`] — typed invariant violations ([`MpcError`]); every
//!   panicking entry point has a `try_*` sibling returning these;
//! * [`exec`] — serial vs parallel local compute ([`ExecMode`]):
//!   install a mode and [`Cluster::map`](cluster::Cluster::map) runs
//!   per-server compute closures on a sanctioned worker pool, with
//!   every exchange boundary a barrier and results merged in server
//!   order, so both modes are byte-identical;
//! * [`stats`] — per-round statistics and the final [`LoadReport`];
//! * [`grid`] — `p₁ × … × p_k` hypercube topologies with `*`-broadcast
//!   (the HyperCube algorithm's addressing primitive, slide 35);
//! * [`hash`] — a seeded family of independent hash functions;
//! * [`weight`] — how many words a message counts for;
//! * [`trace`] — re-export of `parqp-trace`: install a
//!   [`trace::Recorder`] (e.g. via [`trace::Recorder::capture`]) and
//!   every recorded round also emits structured [`trace::TraceEvent`]s
//!   (per-server loads, send fan-out, grid topology). Only this crate
//!   emits communication events (lint rule PQ105); algorithm crates
//!   label their phases with [`trace::span`];
//! * [`faults`] — re-export of `parqp-faults`: install a
//!   [`faults::FaultPlan`] (e.g. via [`faults::capture`]) and scheduled
//!   crashes, message drops/duplications, and stragglers fire at exact
//!   logical rounds as each exchange finishes. Injection is transparent
//!   to algorithms — delivered inboxes are always the post-recovery
//!   view — while recovery overhead (replayed rounds, retransmissions,
//!   replica redistribution) is charged honestly to the same
//!   [`LoadReport`] ledger and emitted as `FaultInjected`/
//!   `RecoveryBegin`/`RecoveryEnd` trace events. Only this crate calls
//!   the fault-runtime round hooks (lint rule PQ106).

pub mod cluster;
pub mod error;
pub mod exec;
pub mod grid;
pub mod hash;
pub mod stats;
pub mod weight;

pub use parqp_faults as faults;
pub use parqp_metrics as metrics;
pub use parqp_store as store;
pub use parqp_trace as trace;

pub use cluster::{Cluster, Exchange};
pub use error::MpcError;
pub use exec::ExecMode;
pub use grid::Grid;
pub use hash::HashFamily;
pub use stats::{LoadReport, RoundStats};
pub use weight::Weight;
