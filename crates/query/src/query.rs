//! Conjunctive queries (natural joins).
//!
//! A query is a set of atoms over variables `0..num_vars`; its result is
//! the natural join: all assignments of values to variables such that
//! every atom's projection is present in its relation. The output schema
//! is the full variable list `0..num_vars` in order.

use parqp_lp::Hypergraph;

/// A query variable, identified by index.
pub type Var = usize;

/// One atom `S(x̄)`: a relation name plus the variables at its positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Display name of the relation (e.g. `"R"`).
    pub name: String,
    /// Variables at the atom's positions, in positional order. Distinct.
    pub vars: Vec<Var>,
}

impl Atom {
    /// Create an atom.
    ///
    /// # Panics
    /// Panics if `vars` is empty or contains repeats (self-join positions
    /// within one atom are not supported; rename apart first).
    pub fn new(name: impl Into<String>, vars: Vec<Var>) -> Self {
        assert!(!vars.is_empty(), "atoms must have at least one variable");
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vars.len(), "repeated variable within an atom");
        Self {
            name: name.into(),
            vars,
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.vars.len()
    }
}

/// A conjunctive query: a natural join of atoms over `0..num_vars`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    num_vars: usize,
    atoms: Vec<Atom>,
}

impl Query {
    /// Create a query.
    ///
    /// # Panics
    /// Panics if there are no atoms, an atom mentions a variable
    /// `≥ num_vars`, or some variable in `0..num_vars` appears in no atom
    /// (the output would be unconstrained).
    pub fn new(num_vars: usize, atoms: Vec<Atom>) -> Self {
        assert!(!atoms.is_empty(), "queries must have at least one atom");
        let mut used = vec![false; num_vars];
        for a in &atoms {
            for &v in &a.vars {
                assert!(
                    v < num_vars,
                    "atom {} uses variable {v} >= num_vars {num_vars}",
                    a.name
                );
                used[v] = true;
            }
        }
        assert!(
            used.iter().all(|&u| u),
            "every variable must appear in some atom"
        );
        Self { num_vars, atoms }
    }

    /// Number of variables (= output arity).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// The query's hypergraph: vertices = variables, edges = atoms.
    pub fn hypergraph(&self) -> Hypergraph {
        Hypergraph::new(
            self.num_vars,
            self.atoms.iter().map(|a| a.vars.clone()).collect(),
        )
    }

    /// Variables shared between atom `i` and atom `j`.
    pub fn shared_vars(&self, i: usize, j: usize) -> Vec<Var> {
        self.atoms[i]
            .vars
            .iter()
            .copied()
            .filter(|v| self.atoms[j].vars.contains(v))
            .collect()
    }

    // --- The named queries of the tutorial ---

    /// Triangle `Δ(x,y,z) = R(x,y) ⋈ S(y,z) ⋈ T(z,x)` (slide 34).
    /// Variables: `x=0, y=1, z=2`.
    pub fn triangle() -> Self {
        Self::new(
            3,
            vec![
                Atom::new("R", vec![0, 1]),
                Atom::new("S", vec![1, 2]),
                Atom::new("T", vec![2, 0]),
            ],
        )
    }

    /// Two-way join `R(x,y) ⋈ S(y,z)` (slide 22). Variables `x=0,y=1,z=2`.
    pub fn two_way() -> Self {
        Self::new(
            3,
            vec![Atom::new("R", vec![0, 1]), Atom::new("S", vec![1, 2])],
        )
    }

    /// Cartesian product `R(x) ⋈ S(z)` (slide 27). Variables `x=0,z=1`.
    pub fn product() -> Self {
        Self::new(2, vec![Atom::new("R", vec![0]), Atom::new("S", vec![1])])
    }

    /// The semijoin pair `R(x) ⋈ S(x,y) ⋈ T(y)` (slide 53).
    /// Variables `x=0, y=1`.
    pub fn semijoin_pair() -> Self {
        Self::new(
            2,
            vec![
                Atom::new("R", vec![0]),
                Atom::new("S", vec![0, 1]),
                Atom::new("T", vec![1]),
            ],
        )
    }

    /// Chain query `R₁(A₀,A₁) ⋈ … ⋈ R_n(A_{n-1},A_n)` (slides 62, 79).
    pub fn chain(n: usize) -> Self {
        assert!(n > 0);
        Self::new(
            n + 1,
            (0..n)
                .map(|i| Atom::new(format!("R{}", i + 1), vec![i, i + 1]))
                .collect(),
        )
    }

    /// Star query `R₁(A₀,A₁) ⋈ R₂(A₀,A₂) ⋈ … ⋈ R_n(A₀,A_n)` (slide 79).
    pub fn star(n: usize) -> Self {
        assert!(n > 0);
        Self::new(
            n + 1,
            (1..=n)
                .map(|i| Atom::new(format!("R{i}"), vec![0, i]))
                .collect(),
        )
    }

    /// Cycle query `R₁(x₁,x₂) ⋈ … ⋈ R_n(x_n,x₁)`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3);
        Self::new(
            n,
            (0..n)
                .map(|i| Atom::new(format!("R{}", i + 1), vec![i, (i + 1) % n]))
                .collect(),
        )
    }

    /// The slide-64 acyclic example:
    /// `R₁(A₀,A₁) ⋈ R₂(A₀,A₂) ⋈ R₃(A₁,A₃) ⋈ R₄(A₂,A₄) ⋈ R₅(A₂,A₅)`.
    pub fn slide64_tree() -> Self {
        Self::new(
            6,
            vec![
                Atom::new("R1", vec![0, 1]),
                Atom::new("R2", vec![0, 2]),
                Atom::new("R3", vec![1, 3]),
                Atom::new("R4", vec![2, 4]),
                Atom::new("R5", vec![2, 5]),
            ],
        )
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ⋈ ")?;
            }
            write!(f, "{}(", a.name)?;
            for (k, v) in a.vars.iter().enumerate() {
                if k > 0 {
                    write!(f, ",")?;
                }
                write!(f, "x{v}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_lp::fractional_edge_packing;

    #[test]
    fn triangle_structure() {
        let q = Query::triangle();
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.shared_vars(0, 1), vec![1]);
        assert_eq!(q.shared_vars(0, 2), vec![0]);
    }

    #[test]
    fn hypergraph_matches_lp_constructors() {
        assert_eq!(
            Query::triangle().hypergraph(),
            parqp_lp::Hypergraph::triangle()
        );
        assert_eq!(Query::chain(5).hypergraph(), parqp_lp::Hypergraph::chain(5));
        assert_eq!(
            Query::semijoin_pair().hypergraph(),
            parqp_lp::Hypergraph::semijoin_pair()
        );
    }

    #[test]
    fn chain20_tau_ten() {
        // Slide 62: the chain of 20 binary atoms has τ* = 10.
        let p = fractional_edge_packing(&Query::chain(20).hypergraph());
        assert!((p.value - 10.0).abs() < 1e-6);
    }

    #[test]
    fn display_readable() {
        let s = Query::two_way().to_string();
        assert_eq!(s, "R(x0,x1) ⋈ S(x1,x2)");
    }

    #[test]
    fn star_has_common_center() {
        let q = Query::star(3);
        for a in q.atoms() {
            assert!(a.vars.contains(&0));
        }
    }

    #[test]
    #[should_panic(expected = "every variable")]
    fn unused_variable_rejected() {
        Query::new(3, vec![Atom::new("R", vec![0, 1])]);
    }

    #[test]
    #[should_panic(expected = "repeated variable")]
    fn repeated_var_rejected() {
        Atom::new("R", vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one atom")]
    fn empty_query_rejected() {
        Query::new(0, vec![]);
    }
}
