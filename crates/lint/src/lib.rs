//! `parqp-lint` — in-tree static analysis for the parqp workspace.
//!
//! Every theorem this repo reproduces is a statement about the
//! deterministic `(L, r, C)` accounting of the MPC simulator: load
//! bounds like the HyperCube `IN/p^{1/τ*}` check in
//! `tests/hypercube_load_bounds.rs` are only meaningful if (a) runs are
//! bit-reproducible and (b) every message an algorithm sends is charged
//! through `parqp_mpc::Cluster::exchange`. This crate enforces those
//! invariants lexically, with zero dependencies, so the check runs in CI
//! before anything is even compiled:
//!
//! - **determinism** (`PQ001`–`PQ004`, [`rules`]) — no seed-dependent
//!   hash containers, wall-clock reads, or threads in production code;
//! - **layering** (`PQ101`–`PQ104`, [`rules`], [`manifest`]) — the crate
//!   DAG matches DESIGN.md, `parqp-testkit` stays dev-only outside the
//!   RNG whitelist, and only `parqp-mpc` constructs accounting;
//! - **panic ratchet** (`PQ201`, [`ratchet`]) — the per-crate count of
//!   `.unwrap()`/`.expect(`/`panic!`/index sites never grows past the
//!   committed `lint/baseline.toml`;
//! - **offline guard** (`PQ301`/`PQ302`, [`manifest`]) — every
//!   dependency resolves inside the repo, and `rand`/`proptest`/
//!   `criterion` never return.
//!
//! Run it with `cargo run -p parqp-lint`; suppress a finding with an
//! inline `// parqp-lint: allow(PQxxx)` comment (same line, or a lone
//! comment on the line above); regenerate the ratchet with
//! `cargo run -p parqp-lint -- --fix-baseline`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub mod manifest;
pub mod ratchet;
pub mod rules;
pub mod tokenize;

use ratchet::{Baseline, PanicCounts};

/// One finding, with a machine-readable rule ID and a clickable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule ID, e.g. `"PQ001"`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line, or 0 for whole-crate findings (the ratchet).
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{} {}: {}", self.rule, self.path, self.message)
        } else {
            write!(
                f,
                "{} {}:{}: {}",
                self.rule, self.path, self.line, self.message
            )
        }
    }
}

/// Everything one lint run produced.
pub struct LintReport {
    /// Hard failures, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Ratchet counters that shrank below the baseline (nudge, not failure).
    pub stale_baseline: Vec<String>,
    /// Actual per-crate panic counts (what `--fix-baseline` would write).
    pub panic_counts: BTreeMap<String, PanicCounts>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Locate the workspace root from this crate's manifest dir (two levels
/// up), for use by in-tree tests and the binary.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint lives two levels under the workspace root")
        .to_path_buf()
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// The workspace's member crate directories (`crates/*`), sorted by name.
pub fn member_dirs(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// All `.rs` files under `dir`, recursively, sorted for deterministic
/// diagnostic order.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.filter_map(Result::ok) {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Run every rule family over the workspace at `root`.
///
/// `baseline` governs the PQ201 ratchet: `Some` compares against it,
/// `None` skips the comparison (used by `--fix-baseline`, which only
/// wants the counts back).
pub fn lint_workspace(root: &Path, baseline: Option<&Baseline>) -> Result<LintReport, String> {
    let mut diagnostics = Vec::new();
    let mut panic_counts: BTreeMap<String, PanicCounts> = BTreeMap::new();
    let mut files_scanned = 0;

    // Workspace-root manifest (offline rules).
    let ws_manifest_path = root.join("Cargo.toml");
    let ws_manifest = read(&ws_manifest_path)?;
    diagnostics.extend(manifest::lint_workspace_manifest(
        &rel(root, &ws_manifest_path),
        &ws_manifest,
    ));

    // Member crates: manifest rules + source rules + panic counting.
    for dir in member_dirs(root)? {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("unreadable crate dir name under {}", dir.display()))?
            .to_string();

        let manifest_path = dir.join("Cargo.toml");
        let toml = read(&manifest_path)?;
        diagnostics.extend(manifest::lint_manifest(
            &crate_name,
            &rel(root, &manifest_path),
            &toml,
        ));

        let counts = panic_counts.entry(crate_name.clone()).or_default();
        for file in rust_files(&dir.join("src")) {
            let text = read(&file)?;
            let sanitized = tokenize::sanitize(&text);
            diagnostics.extend(rules::lint_source(
                &crate_name,
                &rel(root, &file),
                &sanitized,
            ));
            counts.add(ratchet::count_file(&sanitized));
            files_scanned += 1;
        }
    }

    let mut stale_baseline = Vec::new();
    if let Some(baseline) = baseline {
        let outcome = baseline.compare(&panic_counts);
        diagnostics.extend(outcome.diagnostics);
        stale_baseline = outcome.stale;
    }

    diagnostics
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(LintReport {
        diagnostics,
        stale_baseline,
        panic_counts,
        files_scanned,
    })
}

/// The default baseline location: `lint/baseline.toml` under `root`.
pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("lint").join("baseline.toml")
}

/// Load the committed ratchet baseline.
pub fn load_baseline(root: &Path) -> Result<Baseline, String> {
    Baseline::parse(&read(&baseline_path(root))?)
}

/// Run only the offline rules (`PQ301`/`PQ302`) over every manifest —
/// the original `offline_guard` check, now callable as a library so the
/// testkit guard test and the full lint share one implementation.
pub fn check_offline(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let ws_manifest_path = root.join("Cargo.toml");
    let mut out =
        manifest::lint_workspace_manifest(&rel(root, &ws_manifest_path), &read(&ws_manifest_path)?);
    for dir in member_dirs(root)? {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let manifest_path = dir.join("Cargo.toml");
        out.extend(
            manifest::lint_manifest(
                &crate_name,
                &rel(root, &manifest_path),
                &read(&manifest_path)?,
            )
            .into_iter()
            .filter(|d| d.rule == "PQ301" || d.rule == "PQ302"),
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_display_with_and_without_line() {
        let d = Diagnostic {
            rule: "PQ001",
            path: "crates/mpc/src/hash.rs".into(),
            line: 141,
            message: "msg".into(),
        };
        assert_eq!(d.to_string(), "PQ001 crates/mpc/src/hash.rs:141: msg");
        let d0 = Diagnostic { line: 0, ..d };
        assert_eq!(d0.to_string(), "PQ001 crates/mpc/src/hash.rs: msg");
    }

    #[test]
    fn workspace_root_is_a_workspace() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn member_dirs_sorted_and_complete() {
        let dirs = member_dirs(&workspace_root()).expect("members");
        let names: Vec<String> = dirs
            .iter()
            .map(|d| d.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(names.iter().any(|n| n == "mpc"));
        assert!(names.iter().any(|n| n == "lint"));
    }
}
