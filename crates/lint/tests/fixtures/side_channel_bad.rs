//! Fixture: MPC-layering violations in an algorithm crate (PQ103/PQ104).

use parqp_mpc::{LoadReport, RoundStats};

pub fn leak() -> String {
    std::fs::read_to_string("/tmp/x").expect("read")
}

pub fn fabricate(p: usize) -> LoadReport {
    LoadReport {
        servers: p,
        rounds: vec![RoundStats::zero(p)],
    }
}
