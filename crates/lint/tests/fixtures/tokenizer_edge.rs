//! Tokenizer regression fixture: raw strings, nested block comments,
//! attribute lines, and escaped-newline string continuations must not
//! hide real code or shift line numbers.

#[rustfmt::skip]
pub fn attributed() -> u64 {
    let banned_in_raw = r#"HashMap::new() // "quoted" not code"#;
    let hashes = br##"nested "#" quote"##;
    /* block /* nested block */ still a comment: HashMap::new() */
    let cont = "line one \
HashMap continues";
    let real = std::collections::HashMap::new();
    real.len() as u64
}
