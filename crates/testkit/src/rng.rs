//! A small deterministic PRNG: SplitMix64 seeding feeding a
//! xoshiro256++ core.
//!
//! Everything in this workspace that needs randomness — workload
//! generators, hash seeds, property-test case generation — goes through
//! this module, so a single `u64` seed pins down every byte a run
//! produces. The generator is Blackman & Vigna's xoshiro256++ (public
//! domain reference implementation), whose 256-bit state is expanded
//! from the seed with SplitMix64 exactly as the authors recommend; this
//! avoids the all-zero-state trap and decorrelates nearby seeds.
//!
//! The API mirrors the subset of `rand` the workspace used to consume:
//! [`Rng::seed_from_u64`], [`Rng::gen_range`] over integer ranges,
//! [`Rng::gen_f64`] for uniform floats in `[0, 1)` (what the Zipf
//! sampler's inverse-CDF draw needs), [`Rng::gen_bool`], and
//! [`Rng::shuffle`].

/// One step of SplitMix64: mixes `state` in place and returns the next
/// output word. Used for seed expansion and for deriving per-case seeds
/// in the property-test runner.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `0..n` without modulo bias (Lemire's method with a
    /// rejection fix-up).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below needs a non-empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform over an integer range, half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`).
    ///
    /// # Panics
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits of one draw.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Split off an independent generator (for nested seeding: the child
    /// stream is decorrelated from the parent's continuation).
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

/// Integer ranges [`Rng::gen_range`] accepts.
pub trait UniformRange {
    /// The sampled integer type.
    type Output;
    /// Draw uniformly from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.gen_below(span) as $t
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.gen_below(span + 1) as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.gen_below(span) as $t)
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.gen_below(span + 1) as $t)
            }
        }
    )*};
}
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl UniformRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "empty or non-finite float range"
        );
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = Rng::seed_from_u64(0);
        let mut b = Rng::seed_from_u64(1);
        let same = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the state {1, 2, 3, 4}, as
        // produced by the authors' reference C implementation.
        let mut rng = Rng { s: [1, 2, 3, 4] };
        let expect: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_below_covers_small_ranges() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let u = rng.gen_f64();
                assert!((0.0..1.0).contains(&u));
                u
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 1/2");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(13);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle left input fixed");
    }

    #[test]
    fn fork_streams_diverge() {
        let mut parent = Rng::seed_from_u64(17);
        let mut child = parent.fork();
        let overlaps = (0..1000)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(overlaps, 0);
    }
}
