//! Fixture: driving the fault runtime from an algorithm crate (PQ106).

use parqp_faults as faults;

pub fn drive_schedule(p: usize) -> usize {
    faults::next_round_faults(p).len()
}

pub fn forge_log(round: usize, server: usize) {
    faults::note_injected(round, server, "crash");
    faults::note_recovery(1, 100, 200);
}
