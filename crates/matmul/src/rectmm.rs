//! Non-square and sparse matrix multiplication (slide 127's "Other
//! Results": non-square MM, sparse square and non-square MM).
//!
//! * [`RectMatrix`] — a dense `m × k` matrix with the conventional
//!   `m·k·n` oracle;
//! * [`rect_block_nonsquare`] — the 1-round rectangle-block algorithm
//!   generalized to `C = A(m×k) · B(k×n)`: processor `(i, j)` of an
//!   `⌈m/t₁⌉ × ⌈n/t₂⌉` grid receives `t₁` rows of `A` and `t₂` columns
//!   of `B` (load `(t₁ + t₂)·k`) and computes a `t₁ × t₂` block of `C`;
//! * [`sql_matmul_rect`] — the join-based plan, which is *sparsity
//!   adaptive*: only non-zero entries travel, so communication scales
//!   with `nnz(A) + nnz(B) +` the partial-sum volume.

use parqp_data::FastMap;
use parqp_mpc::{Cluster, Grid, HashFamily, LoadReport, Weight};
use parqp_testkit::Rng;

/// A dense rectangular matrix, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct RectMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl RectMatrix {
    /// The zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrices must be non-empty");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics unless `data.len() == rows·cols`.
    pub fn from_data(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "row-major data must have rows·cols entries"
        );
        Self { rows, cols, data }
    }

    /// Random integer-valued entries (exact arithmetic), with an
    /// optional `density` in `(0, 1]`: entries are zero with probability
    /// `1 − density` (sparse generation).
    pub fn random_int(rows: usize, cols: usize, max: u32, density: f64, seed: u64) -> Self {
        assert!(density > 0.0 && density <= 1.0, "density in (0, 1]");
        let mut rng = Rng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| {
                if rng.gen_f64() < density {
                    f64::from(rng.gen_range(1..=max))
                } else {
                    0.0
                }
            })
            .collect();
        Self { rows, cols, data }
    }

    /// Row count `m`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Set element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` as an owned vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Serial conventional multiplication oracle.
    ///
    /// # Panics
    /// Panics unless `self.cols == other.rows`.
    pub fn multiply(&self, other: &RectMatrix) -> RectMatrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut c = RectMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let crow = &mut c.data[i * other.cols..(i + 1) * other.cols];
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv += a * bv;
                }
            }
        }
        c
    }

    /// Max absolute element difference.
    pub fn max_abs_diff(&self, other: &RectMatrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[derive(Debug, Clone)]
struct Strip {
    id: u64,
    vals: Vec<f64>,
}

impl Weight for Strip {
    fn words(&self) -> u64 {
        self.vals.len() as u64
    }
}

/// One-round rectangle-block multiplication of `A(m×k) · B(k×n)` with
/// row-group size `t1` and column-group size `t2`; the per-processor
/// load is `(t1 + t2)·k` words.
///
/// # Panics
/// Panics if a group size is zero or exceeds its dimension.
pub fn rect_block_nonsquare(a: &RectMatrix, b: &RectMatrix, t1: usize, t2: usize) -> MatMulRun2 {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert!(t1 >= 1 && t1 <= m, "t1 must be in 1..=m");
    assert!(t2 >= 1 && t2 <= n, "t2 must be in 1..=n");
    let grid = Grid::new(vec![m.div_ceil(t1), n.div_ceil(t2)]);
    let mut cluster = Cluster::new(grid.len());

    let mut ex = cluster.exchange::<Strip>();
    for i in 0..m {
        ex.send_matching(
            &grid,
            &[Some(i / t1), None],
            Strip {
                id: i as u64,
                vals: a.row(i).to_vec(),
            },
        );
    }
    for j in 0..n {
        ex.send_matching(
            &grid,
            &[None, Some(j / t2)],
            Strip {
                id: (m + j) as u64,
                vals: b.col(j),
            },
        );
    }
    let inboxes = ex.finish();

    let mut c = RectMatrix::zeros(m, n);
    for inbox in inboxes {
        let mut rows: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut cols: Vec<(usize, Vec<f64>)> = Vec::new();
        for s in inbox {
            let id = s.id as usize;
            if id < m {
                rows.push((id, s.vals));
            } else {
                cols.push((id - m, s.vals));
            }
        }
        for (i, arow) in &rows {
            for (j, bcol) in &cols {
                let dot: f64 = arow.iter().zip(bcol).map(|(x, y)| x * y).sum();
                c.set(*i, *j, dot);
            }
        }
    }
    let _ = k;
    MatMulRun2 {
        c,
        report: cluster.report(),
    }
}

/// Result of a rectangular distributed multiplication.
#[derive(Debug, Clone)]
pub struct MatMulRun2 {
    /// The gathered product.
    pub c: RectMatrix,
    /// Communication ledger.
    pub report: LoadReport,
}

#[derive(Debug, Clone)]
struct Entry {
    kind: u8,
    r: usize,
    c: usize,
    v: f64,
}

impl Weight for Entry {
    fn words(&self) -> u64 {
        3
    }
}

/// Sparse/rectangular SQL-plan multiplication: join on the inner index,
/// partial-aggregate, shuffle by `(i, k)`. Communication scales with the
/// number of non-zeros.
pub fn sql_matmul_rect(a: &RectMatrix, b: &RectMatrix, p: usize, seed: u64) -> MatMulRun2 {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let (m, n) = (a.rows(), b.cols());
    let mut cluster = Cluster::new(p);
    let h = HashFamily::new(seed, 2);

    let mut ex = cluster.exchange::<Entry>();
    for i in 0..m {
        for j in 0..a.cols() {
            let v = a.get(i, j);
            if v != 0.0 {
                ex.send(
                    h.hash(0, j as u64, p),
                    Entry {
                        kind: 0,
                        r: i,
                        c: j,
                        v,
                    },
                );
            }
        }
    }
    for j in 0..b.rows() {
        for k in 0..n {
            let v = b.get(j, k);
            if v != 0.0 {
                ex.send(
                    h.hash(0, j as u64, p),
                    Entry {
                        kind: 1,
                        r: j,
                        c: k,
                        v,
                    },
                );
            }
        }
    }
    let inboxes = ex.finish();

    let partials: Vec<FastMap<(usize, usize), f64>> = inboxes
        .into_iter()
        .map(|inbox| {
            let mut a_by_j: FastMap<usize, Vec<(usize, f64)>> = FastMap::default();
            let mut b_by_j: FastMap<usize, Vec<(usize, f64)>> = FastMap::default();
            for e in inbox {
                if e.kind == 0 {
                    a_by_j.entry(e.c).or_default().push((e.r, e.v));
                } else {
                    b_by_j.entry(e.r).or_default().push((e.c, e.v));
                }
            }
            let mut acc: FastMap<(usize, usize), f64> = FastMap::default();
            for (j, avs) in &a_by_j {
                if let Some(bvs) = b_by_j.get(j) {
                    for &(i, av) in avs {
                        for &(kk, bv) in bvs {
                            *acc.entry((i, kk)).or_insert(0.0) += av * bv;
                        }
                    }
                }
            }
            acc
        })
        .collect();

    let mut ex = cluster.exchange::<Entry>();
    for acc in &partials {
        for (&(i, k), &v) in acc {
            ex.send(
                h.hash(1, (i * n + k) as u64, p),
                Entry {
                    kind: 2,
                    r: i,
                    c: k,
                    v,
                },
            );
        }
    }
    let inboxes = ex.finish();
    let mut c = RectMatrix::zeros(m, n);
    for inbox in inboxes {
        for e in inbox {
            let cur = c.get(e.r, e.c);
            c.set(e.r, e.c, cur + e.v);
        }
    }
    MatMulRun2 {
        c,
        report: cluster.report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_block_correct_nonsquare() {
        let a = RectMatrix::random_int(12, 20, 5, 1.0, 1);
        let b = RectMatrix::random_int(20, 8, 5, 1.0, 2);
        let expect = a.multiply(&b);
        for (t1, t2) in [(3, 2), (4, 4), (12, 8), (1, 1), (5, 3)] {
            let run = rect_block_nonsquare(&a, &b, t1, t2);
            assert!(run.c.max_abs_diff(&expect) < 1e-9, "t=({t1},{t2})");
            assert_eq!(run.report.num_rounds(), 1);
        }
    }

    #[test]
    fn rect_block_load_formula() {
        let a = RectMatrix::random_int(12, 20, 5, 1.0, 3);
        let b = RectMatrix::random_int(20, 8, 5, 1.0, 4);
        let run = rect_block_nonsquare(&a, &b, 3, 2);
        // (t1 + t2)·k = 5 · 20 = 100 words per processor.
        assert_eq!(run.report.max_load_words(), 100);
        assert_eq!(run.report.servers, (12 / 3) * (8 / 2));
    }

    #[test]
    fn sql_rect_matches_oracle() {
        let a = RectMatrix::random_int(10, 15, 4, 1.0, 5);
        let b = RectMatrix::random_int(15, 9, 4, 1.0, 6);
        let run = sql_matmul_rect(&a, &b, 8, 7);
        assert_eq!(run.c, a.multiply(&b));
        assert_eq!(run.report.num_rounds(), 2);
    }

    #[test]
    fn sparse_communication_scales_with_nnz() {
        let n = 40;
        let dense_a = RectMatrix::random_int(n, n, 4, 1.0, 8);
        let dense_b = RectMatrix::random_int(n, n, 4, 1.0, 9);
        let sparse_a = RectMatrix::random_int(n, n, 4, 0.05, 10);
        let sparse_b = RectMatrix::random_int(n, n, 4, 0.05, 11);
        let dense = sql_matmul_rect(&dense_a, &dense_b, 8, 3);
        let sparse = sql_matmul_rect(&sparse_a, &sparse_b, 8, 3);
        assert_eq!(sparse.c, sparse_a.multiply(&sparse_b));
        // Round-1 traffic is exactly the non-zero count.
        assert_eq!(
            sparse.report.rounds[0].total_tuples() as usize,
            sparse_a.nnz() + sparse_b.nnz()
        );
        assert!(
            sparse.report.total_tuples() * 4 < dense.report.total_tuples(),
            "sparse C {} vs dense C {}",
            sparse.report.total_tuples(),
            dense.report.total_tuples()
        );
    }

    #[test]
    fn square_case_agrees_with_square_module() {
        let n = 12;
        let ra = RectMatrix::random_int(n, n, 5, 1.0, 12);
        let rb = RectMatrix::random_int(n, n, 5, 1.0, 13);
        let sa = crate::Matrix::from_data(n, (0..n * n).map(|i| ra.data[i]).collect());
        let sb = crate::Matrix::from_data(n, (0..n * n).map(|i| rb.data[i]).collect());
        let rect = rect_block_nonsquare(&ra, &rb, 4, 4);
        let square = crate::square_block(&sa, &sb, 3, 9);
        for i in 0..n {
            for j in 0..n {
                assert!((rect.c.get(i, j) - square.c.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn dimension_mismatch_rejected() {
        let a = RectMatrix::zeros(3, 4);
        let b = RectMatrix::zeros(5, 3);
        a.multiply(&b);
    }
}
