//! Mutation fixture: a worker closure that emits a trace event.
//! The closure runs on a pool thread, where the thread-local trace
//! runtime is not installed — PQ401 must anchor at the root line.

pub fn probe_phase(cluster: &Cluster, parts: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    cluster.map(parts, |_sid, part| {
        trace::emit(part.len());
        part
    })
}
