//! Self-check: the workspace must satisfy its own linter.
//!
//! This is the test-suite twin of the CI `cargo run -p parqp-lint`
//! step: every rule family runs over every member crate against the
//! committed `lint/baseline.toml`. If this fails, either fix the
//! violation, annotate a sanctioned site with
//! `// parqp-lint: allow(PQxxx)`, or (for a deliberate panic-surface
//! reduction) regenerate the ratchet with
//! `cargo run -p parqp-lint -- --fix-baseline`.

use parqp_lint::{lint_workspace, load_baseline, workspace_root};

#[test]
fn workspace_is_lint_clean_under_committed_baseline() {
    let root = workspace_root();
    let baseline = load_baseline(&root).expect("lint/baseline.toml exists and parses");
    let report = lint_workspace(&root, Some(&baseline)).expect("workspace lint runs");
    assert!(
        report.diagnostics.is_empty(),
        "parqp-lint found violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned >= 80,
        "walked only {} files — member discovery is broken",
        report.files_scanned
    );
}

/// The effect analysis must have *found* the shipped worker phases —
/// a clean report with zero roots would mean root detection broke and
/// PQ401–PQ404 pass vacuously.
#[test]
fn effect_analysis_sees_the_shipped_worker_phases() {
    let root = workspace_root();
    let baseline = load_baseline(&root).expect("baseline parses");
    let report = lint_workspace(&root, Some(&baseline)).expect("workspace lint runs");

    let roots = &report.worker_roots;
    assert!(
        roots.len() >= 9,
        "only {} worker roots found — map/try_map detection regressed:\n{:#?}",
        roots.len(),
        roots
    );
    // Every shipped parallel algorithm contributes at least one root.
    for file in [
        "crates/join/src/twoway.rs",
        "crates/join/src/multiway.rs",
        "crates/join/src/plans.rs",
        "crates/sort/src/psrs.rs",
        "crates/matmul/src/square.rs",
    ] {
        assert!(
            roots.iter().any(|r| r.path == file),
            "no worker root detected in {file}"
        );
    }
    // All algorithm-crate roots are closure literals (checkable), and
    // the call graph actually followed helpers out of at least some of
    // them — zero reachable fns everywhere would mean resolution broke.
    assert!(
        roots
            .iter()
            .filter(|r| r.crate_name != "mpc" && r.crate_name != "testkit")
            .all(|r| r.closure),
        "an algorithm-crate worker job is not a closure literal:\n{roots:#?}"
    );
    assert!(
        roots.iter().any(|r| r.reachable_fns > 0),
        "no root reaches any workspace function — edge resolution broke:\n{roots:#?}"
    );
}

#[test]
fn baseline_covers_every_member_crate() {
    let root = workspace_root();
    let baseline = load_baseline(&root).expect("baseline parses");
    for dir in parqp_lint::member_dirs(&root).expect("members") {
        let name = dir.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            baseline.crates.contains_key(&name),
            "crate `{name}` missing from lint/baseline.toml — run --fix-baseline"
        );
    }
}
