//! Minimal text-table / CSV rendering for experiment output.

/// A rendered experiment table: a title, column headers and string rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment title (includes the paper location).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (comma-separated, no quoting — cells are numeric or
    /// simple identifiers).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float compactly for table cells.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e6 || v.abs() < 1e-2 {
        format!("{v:.3e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long_header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().nth(1), Some("1,2"));
    }

    #[test]
    fn fmt_modes() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(3.0), "3");
        assert_eq!(fmt(3.5), "3.50");
        assert!(fmt(1.5e9).contains('e'));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_checked() {
        Table::new("demo", &["a"]).row(vec!["1".into(), "2".into()]);
    }
}
