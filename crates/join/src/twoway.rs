//! Two-way equi-joins in the MPC model (slides 22–32).
//!
//! | algorithm | load (slides) | rounds |
//! |---|---|---|
//! | [`hash_join`] | `Θ(IN/p)` without skew, up to `IN` with | 1 |
//! | [`broadcast_join`] | `|R| + |S|/p` (broadcast the small side) | 1 |
//! | [`cartesian`] | `2·√(|R|·|S|/p)` — optimal for products | 1 |
//! | [`skew_join`] | `O(√(OUT/p) + IN/p)` for any skew | 1 |
//! | [`sort_merge_join`] | `O(√(OUT/p) + IN/p)` for any skew | 4 |
//!
//! Output convention: a joined row is the full `R` row followed by the
//! `S` row minus its join column ([`crate::common::merge_rows`]).

use crate::common::{joined_arity, local_hash_join, merge_rows, scatter, JoinRun, Tagged};
use parqp_data::paged::RouteScan;
use parqp_data::stats::{degree_counts, join_heavy_hitters, join_output_size};
use parqp_data::{Relation, Value};
use parqp_mpc::{metrics, trace, Cluster, HashFamily, LoadReport, Weight};

const TAG_R: u32 = 0;
const TAG_S: u32 = 1;

/// Parallel hash join (slide 23): both relations are repartitioned by a
/// shared hash of the join attribute; each server joins its bucket
/// locally. One round; load `Θ(IN/p)` w.h.p. on skew-free input, but a
/// value of degree `d` puts `d` tuples on one server — the skew failure
/// mode of slides 25–27.
///
/// ```
/// use parqp_join::twoway::hash_join;
/// use parqp_data::Relation;
///
/// let r = Relation::from_rows(2, [[1, 10], [2, 20]]);
/// let s = Relation::from_rows(2, [[10, 7], [20, 8]]);
/// let run = hash_join(&r, 1, &s, 0, 4, 42);
/// // Output convention: R row ++ S row minus its join column.
/// assert_eq!(run.gathered().canonical().to_rows(),
///            vec![vec![1, 10, 7], vec![2, 20, 8]]);
/// ```
pub fn hash_join(
    r: &Relation,
    r_col: usize,
    s: &Relation,
    s_col: usize,
    p: usize,
    seed: u64,
) -> JoinRun {
    let mut cluster = Cluster::new(p);
    let h = HashFamily::new(seed, 1);
    let r_parts = scatter(r, p);
    let s_parts = scatter(s, p);
    if metrics::is_enabled() {
        // Slide 23: one round at L = IN/p on skew-free input (τ* = 1).
        metrics::announce(&metrics::PaperBound::tuples(
            "hash_join",
            (r.len() + s.len()) as f64 / p as f64,
            1,
        ));
    }

    let _span = trace::span("hash_join/partition");
    let mut ex = cluster.exchange::<Tagged>();
    for (sid, part) in r_parts.iter().enumerate() {
        ex.set_sender(sid);
        let scan = RouteScan::new(sid, part);
        for row in scan.iter() {
            ex.send(h.hash(0, row[r_col], p), Tagged::new(TAG_R, row.to_vec()));
        }
    }
    for (sid, part) in s_parts.iter().enumerate() {
        ex.set_sender(sid);
        let scan = RouteScan::new(sid, part);
        for row in scan.iter() {
            ex.send(h.hash(0, row[s_col], p), Tagged::new(TAG_S, row.to_vec()));
        }
    }
    let inboxes = ex.finish();

    let arity = joined_arity(r.arity(), s.arity());
    let outputs = cluster.map(inboxes, |_, inbox| {
        let (r_rows, s_rows) = split_tags(inbox);
        let mut out = Relation::new(arity);
        local_hash_join(&r_rows, r_col, &s_rows, s_col, &mut out);
        out
    });
    JoinRun {
        outputs,
        report: cluster.report(),
    }
}

/// Broadcast join (slide 32): replicate `r` (the small side) to every
/// server; `s` never moves. One round; load `|R| + |S|/p` — the right
/// choice when `|R| ≪ |S|/√p`.
pub fn broadcast_join(r: &Relation, r_col: usize, s: &Relation, s_col: usize, p: usize) -> JoinRun {
    let mut cluster = Cluster::new(p);
    let r_parts = scatter(r, p);
    let s_parts = scatter(s, p);
    if metrics::is_enabled() {
        // Slide 32: the replicated small side lands whole on every
        // server; the big side never moves (its resident |S|/p share
        // is the bound's second term but is never received).
        metrics::announce(&metrics::PaperBound::tuples(
            "broadcast_join",
            r.len() as f64 + s.len() as f64 / p as f64,
            1,
        ));
    }

    let _span = trace::span("broadcast_join/replicate");
    let mut ex = cluster.exchange::<Vec<Value>>();
    for (sid, part) in r_parts.iter().enumerate() {
        ex.set_sender(sid);
        let scan = RouteScan::new(sid, part);
        for row in scan.iter() {
            ex.broadcast(row.to_vec());
        }
    }
    let inboxes = ex.finish();

    let arity = joined_arity(r.arity(), s.arity());
    let work: Vec<_> = inboxes.into_iter().zip(s_parts).collect();
    let outputs = cluster.map(work, |_, (r_rows, s_part)| {
        let s_rows: Vec<Vec<Value>> = s_part.iter().map(<[Value]>::to_vec).collect();
        let mut out = Relation::new(arity);
        local_hash_join(&r_rows, r_col, &s_rows, s_col, &mut out);
        out
    });
    JoinRun {
        outputs,
        report: cluster.report(),
    }
}

/// The optimal `p₁ × p₂` split for a Cartesian product:
/// `|R|/p₁ = |S|/p₂` with `p₁·p₂ ≤ p` (slide 28).
pub fn product_grid(nr: usize, ns: usize, p: usize) -> (usize, usize) {
    if p <= 1 {
        return (1, 1);
    }
    let ratio = ((nr.max(1) as f64) / (ns.max(1) as f64)).sqrt();
    let mut p1 = ((p as f64).sqrt() * ratio).round().max(1.0) as usize;
    p1 = p1.min(p);
    let mut p2 = p / p1;
    if p2 == 0 {
        p2 = 1;
        p1 = p;
    }
    // Local search: try to improve the load by shifting the balance.
    let load = |a: usize, b: usize| nr as f64 / a as f64 + ns as f64 / b as f64;
    let mut best = (p1, p2);
    for a in 1..=p {
        let b = p / a;
        if b >= 1 && load(a, b) < load(best.0, best.1) {
            best = (a, b);
        }
    }
    best
}

/// Cartesian product on a `p₁ × p₂` server grid (slide 28): each `R`
/// tuple goes to one random row (replicated across its `p₂` columns),
/// each `S` tuple to one random column. One round; load
/// `|R|/p₁ + |S|/p₂ = Θ(√(|R|·|S|/p))` at the optimal split.
///
/// Output rows are `r_row ++ s_row` (no join column to drop).
pub fn cartesian(r: &Relation, s: &Relation, p: usize, seed: u64) -> JoinRun {
    let (p1, p2) = product_grid(r.len(), s.len(), p);
    let grid = parqp_mpc::Grid::new(vec![p1, p2]);
    let mut cluster = Cluster::new(grid.len());
    let h = HashFamily::new(seed, 2);
    let r_parts = scatter(r, grid.len());
    let s_parts = scatter(s, grid.len());
    if metrics::is_enabled() {
        // Slide 28: |R|/p₁ + |S|/p₂ at the grid the split chose.
        metrics::announce(&metrics::PaperBound::tuples(
            "cartesian",
            r.len() as f64 / p1 as f64 + s.len() as f64 / p2 as f64,
            1,
        ));
    }

    let _span = trace::span("cartesian/scatter");
    let mut ex = cluster.exchange::<Tagged>();
    let mut index = 0u64;
    for (sid, part) in r_parts.iter().enumerate() {
        ex.set_sender(sid);
        let scan = RouteScan::new(sid, part);
        for row in scan.iter() {
            let band = h.hash(0, index, p1);
            index += 1;
            ex.send_matching(&grid, &[Some(band), None], Tagged::new(TAG_R, row.to_vec()));
        }
    }
    index = 0;
    for (sid, part) in s_parts.iter().enumerate() {
        ex.set_sender(sid);
        let scan = RouteScan::new(sid, part);
        for row in scan.iter() {
            let band = h.hash(1, index, p2);
            index += 1;
            ex.send_matching(&grid, &[None, Some(band)], Tagged::new(TAG_S, row.to_vec()));
        }
    }
    let inboxes = ex.finish();

    let arity = r.arity() + s.arity();
    let outputs = cluster.map(inboxes, |_, inbox| {
        let (r_rows, s_rows) = split_tags(inbox);
        let mut out = Relation::new(arity);
        let mut buf = Vec::new();
        for a in &r_rows {
            for b in &s_rows {
                buf.clear();
                buf.extend_from_slice(a);
                buf.extend_from_slice(b);
                out.push(&buf);
            }
        }
        out
    });
    JoinRun {
        outputs,
        report: cluster.report(),
    }
}

/// Skew-resilient join (slide 30): light values run the parallel hash
/// join; every heavy hitter `b` gets its own group of servers computing
/// `R(·,b) × S(b,·)` as a Cartesian product. Server groups are allocated
/// by greedy water-filling on the groups' predicted loads, achieving
/// `L = O(√(OUT/p) + IN/p)` for arbitrary skew.
///
/// Heavy hitters are values of degree ≥ `IN/p` in either relation
/// (slide 29). The statistics are computed exactly (a real system uses a
/// sampling round; that changes only constants).
pub fn skew_join(
    r: &Relation,
    r_col: usize,
    s: &Relation,
    s_col: usize,
    p: usize,
    seed: u64,
) -> JoinRun {
    let input = (r.len() + s.len()) as u64;
    let threshold = (input / p as u64).max(1);
    if metrics::is_enabled() {
        // Slide 30: L = O(√(OUT/p) + IN/p) for arbitrary skew.
        // Announced before any sub-algorithm runs, so this is the
        // capture's primary bound even on the hash-join fallback path.
        let out = join_output_size(r, r_col, s, s_col) as f64;
        metrics::announce(&metrics::PaperBound::tuples(
            "skew_join",
            (out / p as f64).sqrt() + input as f64 / p as f64,
            1,
        ));
    }
    let mut heavy = join_heavy_hitters(r, r_col, s, s_col, threshold);
    if heavy.is_empty() || p == 1 {
        // No split possible (or needed): plain hash join.
        return hash_join(r, r_col, s, s_col, p, seed);
    }
    // Each heavy hitter needs an exclusive server group; with fewer
    // servers than hitters, keep the heaviest p−1 and let the rest ride
    // the light hash join (they are at most barely heavy anyway).
    if heavy.len() + 1 > p {
        let dr = degree_counts(r, r_col);
        let ds = degree_counts(s, s_col);
        heavy.sort_by_key(|b| {
            std::cmp::Reverse(dr.get(b).copied().unwrap_or(0) + ds.get(b).copied().unwrap_or(0))
        });
        heavy.truncate(p.saturating_sub(1).max(1));
        heavy.sort_unstable();
    }

    let heavy_set: parqp_data::FastSet<Value> = heavy.iter().copied().collect();
    let r_light = r.filter(|row| !heavy_set.contains(&row[r_col]));
    let s_light = s.filter(|row| !heavy_set.contains(&row[s_col]));
    let r_deg = degree_counts(r, r_col);
    let s_deg = degree_counts(s, s_col);

    // Group 0 = light hash join; group i ≥ 1 = heavy hitter i−1.
    // Predicted cost of a group given its server count, for water-filling.
    let light_in = (r_light.len() + s_light.len()) as f64;
    let heavy_cost: Vec<Box<dyn Fn(usize) -> f64>> = heavy
        .iter()
        .map(|b| {
            let nr = r_deg.get(b).copied().unwrap_or(0) as usize;
            let ns = s_deg.get(b).copied().unwrap_or(0) as usize;
            // The true load of the b-group at q servers: the optimal
            // grid's |R_b|/p₁ + |S_b|/p₂ (degenerates to a broadcast
            // line when one side is a single tuple — 2√(nr·ns/q) alone
            // would badly underestimate that case).
            Box::new(move |q: usize| {
                let (p1, p2) = product_grid(nr, ns, q);
                nr as f64 / p1 as f64 + ns as f64 / p2 as f64
            }) as Box<dyn Fn(usize) -> f64>
        })
        .collect();
    let groups = 1 + heavy.len();
    let mut alloc = vec![1usize; groups];
    let mut spare = p.saturating_sub(groups);
    let cost = |g: usize, q: usize| -> f64 {
        if g == 0 {
            light_in / q as f64
        } else {
            heavy_cost[g - 1](q)
        }
    };
    while spare > 0 {
        let worst = (0..groups)
            .max_by(|&a, &b| {
                cost(a, alloc[a])
                    .partial_cmp(&cost(b, alloc[b]))
                    .expect("finite costs")
            })
            .expect("at least one group");
        alloc[worst] += 1;
        spare -= 1;
    }

    // Run each group on its own sub-cluster; they share the single round.
    let mut outputs = Vec::new();
    let mut reports = Vec::new();
    let light_span = trace::span("skew_join/light");
    let light_run = hash_join(&r_light, r_col, &s_light, s_col, alloc[0], seed);
    drop(light_span);
    outputs.extend(light_run.outputs);
    reports.push(light_run.report);

    let _span = trace::span("skew_join/heavy");
    for (i, &b) in heavy.iter().enumerate() {
        let rb = r.filter(|row| row[r_col] == b);
        let sb = s.filter(|row| row[s_col] == b);
        let run = cartesian(&rb, &sb, alloc[i + 1], seed ^ (i as u64 + 1));
        // Convert product rows (r_row ++ s_row) to the join convention
        // (drop the s join column, now at offset r.arity() + s_col).
        let drop_at = r.arity() + s_col;
        for part in run.outputs {
            let keep: Vec<usize> = (0..part.arity()).filter(|&c| c != drop_at).collect();
            outputs.push(if part.is_empty() {
                Relation::new(joined_arity(r.arity(), s.arity()))
            } else {
                part.project(&keep)
            });
        }
        reports.push(run.report);
    }

    JoinRun {
        outputs,
        report: LoadReport::parallel(&reports),
    }
}

/// A tagged tuple sorted by join key: the unit of the sort-based join.
/// The tiebreak hash makes sort keys effectively distinct, so PSRS keeps
/// its `Θ(N/p)` balance even when one join value dominates; the tuples of
/// such a value then span several servers and are handled by the
/// crossing-key Cartesian grid.
#[derive(Debug, Clone)]
struct SortItem {
    key: Value,
    tie: u64,
    tag: u32,
    row: Vec<Value>,
}

impl Weight for SortItem {
    fn words(&self) -> u64 {
        self.row.len() as u64
    }
}

/// Sort-based join (slide 31, Hu et al. '17): union the relations, sort
/// by the join attribute with PSRS, join locally where a value lives on a
/// single server, and fall back to the Cartesian grid for values that
/// cross server boundaries. `L = O(√(OUT/p) + IN/p)`; 4 rounds
/// (2 for PSRS + boundary exchange + crossing redistribution).
pub fn sort_merge_join(
    r: &Relation,
    r_col: usize,
    s: &Relation,
    s_col: usize,
    p: usize,
    seed: u64,
) -> JoinRun {
    let mut cluster = Cluster::new(p);
    let h = HashFamily::new(seed ^ 0x50f7, 2);
    if metrics::is_enabled() {
        // Slide 31: same load bound as the skew join, in 4 rounds.
        let out = join_output_size(r, r_col, s, s_col) as f64;
        metrics::announce(&metrics::PaperBound::tuples(
            "sort_merge_join",
            (out / p as f64).sqrt() + (r.len() + s.len()) as f64 / p as f64,
            4,
        ));
    }

    // Union, tagged, keyed by the join attribute with a tiebreak.
    let mut items: Vec<SortItem> = Vec::with_capacity(r.len() + s.len());
    let tie_of = |i: usize| h.digest(0, i as u64);
    for row in r.iter() {
        items.push(SortItem {
            key: row[r_col],
            tie: tie_of(items.len()),
            tag: TAG_R,
            row: row.to_vec(),
        });
    }
    for row in s.iter() {
        items.push(SortItem {
            key: row[s_col],
            tie: tie_of(items.len()),
            tag: TAG_S,
            row: row.to_vec(),
        });
    }
    let local = cluster.scatter(items);
    let psrs_span = trace::span("sort_merge/psrs");
    let parts = parqp_sort::psrs_by(&mut cluster, local, |it| (it.key, it.tie));
    drop(psrs_span);

    // Boundary exchange: everyone learns every server's key span plus the
    // per-side row counts at the two boundary keys, so all servers can
    // agree on the *size-aware* grid for every crossing key (a crossing
    // key is the min or max of each of its holders).
    let boundary_span = trace::span("sort_merge/boundaries");
    let mut ex = cluster.exchange::<Vec<u64>>();
    for (sid, part) in parts.iter().enumerate() {
        ex.set_sender(sid);
        if let (Some(first), Some(last)) = (part.first(), part.last()) {
            let count = |key: Value, tag: u32| -> u64 {
                part.iter()
                    .filter(|it| it.key == key && it.tag == tag)
                    .count() as u64
            };
            ex.broadcast(vec![
                sid as u64,
                first.key,
                last.key,
                count(first.key, TAG_R),
                count(first.key, TAG_S),
                count(last.key, TAG_R),
                count(last.key, TAG_S),
            ]);
        }
    }
    let spans_raw = ex.finish();
    drop(boundary_span);
    let spans: Vec<(usize, Value, Value)> = spans_raw[0]
        .iter()
        .map(|m| (m[0] as usize, m[1], m[2]))
        .collect();
    // Global per-candidate-key (r, s) counts from the boundary reports.
    let mut key_counts: parqp_data::FastMap<Value, (usize, usize)> = parqp_data::FastMap::default();
    for m in &spans_raw[0] {
        let (first, last) = (m[1], m[2]);
        let e = key_counts.entry(first).or_insert((0, 0));
        e.0 += m[3] as usize;
        e.1 += m[4] as usize;
        if last != first {
            let e = key_counts.entry(last).or_insert((0, 0));
            e.0 += m[5] as usize;
            e.1 += m[6] as usize;
        }
    }

    // Crossing keys: spans are ordered by key range, so a key crosses iff
    // it lies in ≥ 2 spans; its holders are contiguous. Each crossing key
    // gets the optimal p₁ × p₂ grid for its true (r, s) counts.
    let mut crossing: Vec<(Value, Vec<usize>, usize, usize)> = Vec::new();
    let mut candidates: Vec<Value> = spans.iter().flat_map(|&(_, lo, hi)| [lo, hi]).collect();
    candidates.sort_unstable();
    candidates.dedup();
    for k in candidates {
        let holders: Vec<usize> = spans
            .iter()
            .filter(|&&(_, lo, hi)| lo <= k && k <= hi)
            .map(|&(sid, _, _)| sid)
            .collect();
        if holders.len() >= 2 {
            let (rk, sk) = key_counts.get(&k).copied().unwrap_or((0, 0));
            let (p1, p2) = product_grid(rk.max(1), sk.max(1), holders.len());
            crossing.push((k, holders, p1, p2));
        }
    }
    let crossing_keys: parqp_data::FastSet<Value> =
        crossing.iter().map(|&(k, _, _, _)| k).collect();

    // Redistribution round: rows of crossing keys go to a grid inside the
    // key's holder range; everything else joins locally, no communication.
    let _span = trace::span("sort_merge/crossing");
    let mut ex = cluster.exchange::<SortItem>();
    for (sid, part) in parts.iter().enumerate() {
        ex.set_sender(sid);
        let mut io = parqp_data::paged::IoCursor::new(sid);
        for item in part {
            io.read(item.row.len());
            if !crossing_keys.contains(&item.key) {
                continue;
            }
            let (_, holders, p1, p2) = crossing
                .iter()
                .find(|&&(k, _, _, _)| k == item.key)
                .expect("crossing key known");
            let (p1, p2) = (*p1, *p2);
            // R rows take a random row band, S rows a random column band
            // of the p1 × p2 sub-grid laid over the holders. The tiebreak
            // digest doubles as the band choice.
            if item.tag == TAG_R {
                let band = (item.tie % p1 as u64) as usize;
                for col in 0..p2 {
                    ex.send(holders[band * p2 + col], item.clone());
                }
            } else {
                let band = (item.tie % p2 as u64) as usize;
                for rowb in 0..p1 {
                    ex.send(holders[rowb * p2 + band], item.clone());
                }
            }
        }
    }
    let redist = ex.finish();

    let out_arity = joined_arity(r.arity(), s.arity());
    let work: Vec<_> = parts.into_iter().zip(redist).collect();
    let outputs = cluster.map(work, |_, (part, extra)| {
        let mut out = Relation::new(out_arity);
        // Local phase: non-crossing keys, matched within the sorted run.
        let local_r: Vec<Vec<Value>> = part
            .iter()
            .filter(|it| it.tag == TAG_R && !crossing_keys.contains(&it.key))
            .map(|it| it.row.clone())
            .collect();
        let local_s: Vec<Vec<Value>> = part
            .iter()
            .filter(|it| it.tag == TAG_S && !crossing_keys.contains(&it.key))
            .map(|it| it.row.clone())
            .collect();
        local_hash_join(&local_r, r_col, &local_s, s_col, &mut out);
        // Crossing phase: Cartesian within each key.
        let cr: Vec<&SortItem> = extra.iter().filter(|it| it.tag == TAG_R).collect();
        let cs: Vec<&SortItem> = extra.iter().filter(|it| it.tag == TAG_S).collect();
        let mut buf = Vec::new();
        for a in &cr {
            for b in &cs {
                if a.key == b.key {
                    merge_rows(&a.row, &b.row, s_col, &mut buf);
                    out.push(&buf);
                }
            }
        }
        out
    });
    JoinRun {
        outputs,
        report: cluster.report(),
    }
}

/// Exact output size of the join, used by benches to compare measured
/// loads against `√(OUT/p)`.
pub fn output_size(r: &Relation, r_col: usize, s: &Relation, s_col: usize) -> u64 {
    join_output_size(r, r_col, s, s_col)
}

fn split_tags(inbox: Vec<Tagged>) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let mut r_rows = Vec::new();
    let mut s_rows = Vec::new();
    for t in inbox {
        if t.tag == TAG_R {
            r_rows.push(t.row);
        } else {
            s_rows.push(t.row);
        }
    }
    (r_rows, s_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::twoway_oracle;
    use parqp_data::generate;

    fn check_against_oracle(run: &JoinRun, r: &Relation, r_col: usize, s: &Relation, s_col: usize) {
        let expect = twoway_oracle(r, r_col, s, s_col);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        // Bag semantics: sizes must match too.
        assert_eq!(run.output_size(), expect.len());
    }

    #[test]
    fn hash_join_correct() {
        let r = generate::uniform(2, 500, 100, 1);
        let s = generate::uniform(2, 500, 100, 2);
        let run = hash_join(&r, 1, &s, 0, 8, 42);
        check_against_oracle(&run, &r, 1, &s, 0);
        assert_eq!(run.report.num_rounds(), 1);
        assert_eq!(run.report.total_tuples(), 1000);
    }

    #[test]
    fn hash_join_load_balanced_without_skew() {
        let r = generate::key_unique_pairs(8000, 1, 1 << 40, 3);
        let s = generate::key_unique_pairs(8000, 0, 1 << 40, 4);
        let run = hash_join(&r, 1, &s, 0, 16, 7);
        let ideal = 16_000.0 / 16.0;
        let l = run.report.max_load_tuples() as f64;
        assert!(l < 1.5 * ideal, "L = {l}, ideal = {ideal}");
    }

    #[test]
    fn hash_join_suffers_under_extreme_skew() {
        // Slide 27: all tuples share one key → hash join load = IN.
        let r = generate::constant_key_pairs(1000, 7, 1);
        let s = generate::constant_key_pairs(1000, 7, 0);
        let run = hash_join(&r, 1, &s, 0, 8, 5);
        assert_eq!(run.report.max_load_tuples(), 2000);
    }

    #[test]
    fn broadcast_join_correct() {
        let r = generate::uniform(2, 50, 30, 10);
        let s = generate::uniform(2, 2000, 30, 11);
        let run = broadcast_join(&r, 1, &s, 0, 8);
        check_against_oracle(&run, &r, 1, &s, 0);
        // Load = |R| per server (S never moves).
        assert_eq!(run.report.max_load_tuples(), 50);
        assert_eq!(run.report.total_tuples(), 50 * 8);
    }

    #[test]
    fn cartesian_correct_and_balanced() {
        let r = generate::uniform(1, 200, 1000, 20);
        let s = generate::uniform(1, 200, 1000, 21);
        let run = cartesian(&r, &s, 16, 9);
        assert_eq!(run.output_size(), 200 * 200);
        // Slide 28: L = 2·√(|R||S|/p) = 2·√(40000/16) = 100.
        let l = run.report.max_load_tuples() as f64;
        assert!(l < 2.0 * 100.0, "L = {l}");
    }

    #[test]
    fn cartesian_unequal_sides() {
        let r = generate::uniform(1, 40, 1000, 22);
        let s = generate::uniform(1, 4000, 1000, 23);
        let run = cartesian(&r, &s, 16, 13);
        assert_eq!(run.output_size(), 40 * 4000);
        let (p1, p2) = product_grid(40, 4000, 16);
        assert!(p1 <= p2, "small side gets fewer bands: {p1}x{p2}");
    }

    #[test]
    fn product_grid_within_budget() {
        for (nr, ns, p) in [(10, 10, 4), (1, 100, 7), (1000, 10, 64), (5, 5, 1)] {
            let (p1, p2) = product_grid(nr, ns, p);
            assert!(p1 * p2 <= p.max(1));
            assert!(p1 >= 1 && p2 >= 1);
        }
    }

    #[test]
    fn skew_join_correct_on_zipf() {
        let r = generate::zipf_pairs(2000, 500, 1.2, 1, 31);
        let s = generate::zipf_pairs(2000, 500, 1.2, 0, 32);
        let run = skew_join(&r, 1, &s, 0, 16, 8);
        check_against_oracle(&run, &r, 1, &s, 0);
    }

    #[test]
    fn skew_join_beats_hash_join_on_extreme_skew() {
        let r = generate::constant_key_pairs(2000, 7, 1);
        let s = generate::constant_key_pairs(2000, 7, 0);
        let hash = hash_join(&r, 1, &s, 0, 16, 5);
        let skew = skew_join(&r, 1, &s, 0, 16, 5);
        assert_eq!(skew.gathered().canonical(), hash.gathered().canonical());
        // Hash join: everything on one server (4000). Skew join:
        // 2·√(|R||S|/p) = 2·√(4M/16) = 1000.
        assert_eq!(hash.report.max_load_tuples(), 4000);
        assert!(
            skew.report.max_load_tuples() < 1600,
            "skew L = {}",
            skew.report.max_load_tuples()
        );
    }

    #[test]
    fn skew_join_respects_server_budget_with_many_heavies() {
        // 16 heavy values, only 4 servers: the group allocation must not
        // exceed p.
        let mut r = Relation::new(2);
        let mut s = Relation::new(2);
        for k in 0..16u64 {
            for i in 0..50 {
                r.push(&[i, k]);
                s.push(&[k, i]);
            }
        }
        let run = skew_join(&r, 1, &s, 0, 4, 9);
        assert!(
            run.report.servers <= 4,
            "used {} servers",
            run.report.servers
        );
        check_against_oracle(&run, &r, 1, &s, 0);
        // p = 1 degenerates to the single-server hash join.
        let run1 = skew_join(&r, 1, &s, 0, 1, 9);
        assert_eq!(run1.report.servers, 1);
        check_against_oracle(&run1, &r, 1, &s, 0);
    }

    #[test]
    fn skew_join_no_heavy_is_hash_join() {
        let r = generate::key_unique_pairs(500, 1, 1 << 30, 40);
        let s = generate::key_unique_pairs(500, 0, 1 << 30, 41);
        let run = skew_join(&r, 1, &s, 0, 8, 3);
        assert_eq!(run.report.num_rounds(), 1);
        check_against_oracle(&run, &r, 1, &s, 0);
    }

    #[test]
    fn sort_merge_join_correct() {
        let r = generate::uniform(2, 800, 60, 50);
        let s = generate::uniform(2, 800, 60, 51);
        let run = sort_merge_join(&r, 1, &s, 0, 8, 12);
        check_against_oracle(&run, &r, 1, &s, 0);
    }

    #[test]
    fn sort_merge_join_handles_extreme_skew() {
        let r = generate::constant_key_pairs(1000, 7, 1);
        let s = generate::constant_key_pairs(1000, 7, 0);
        let run = sort_merge_join(&r, 1, &s, 0, 16, 12);
        assert_eq!(run.output_size(), 1_000_000);
        // All rows share one key: the crossing grid must spread the load
        // well below the all-on-one-server 2000.
        let l = run.report.max_load_tuples();
        assert!(l < 1200, "L = {l}");
    }

    #[test]
    fn sort_merge_join_empty_sides() {
        let r = Relation::new(2);
        let s = generate::uniform(2, 100, 10, 52);
        let run = sort_merge_join(&r, 1, &s, 0, 4, 1);
        assert_eq!(run.output_size(), 0);
    }

    #[test]
    fn single_server_degenerate() {
        let r = generate::uniform(2, 100, 20, 60);
        let s = generate::uniform(2, 100, 20, 61);
        for run in [
            hash_join(&r, 1, &s, 0, 1, 2),
            broadcast_join(&r, 1, &s, 0, 1),
            skew_join(&r, 1, &s, 0, 1, 2),
            sort_merge_join(&r, 1, &s, 0, 1, 2),
        ] {
            check_against_oracle(&run, &r, 1, &s, 0);
        }
    }
}
