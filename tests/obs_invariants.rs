//! Observability invariants: the window series recorded by
//! `replay_observed` is an exact re-tiling of the serving ledgers — it
//! invents nothing and loses nothing.
//!
//! * **Tiling** — per-window served/rounds/tuples/words/out_rows and
//!   the cache and page-IO deltas sum exactly to the `ServeReport`
//!   ledgers the same replay produced.
//! * **Sketch accuracy** — the log₂-bucketed latency sketch lands
//!   p50/p99 in the same bucket as the exact nearest-rank percentile of
//!   the per-window samples.
//! * **Determinism** — the full JSONL/Prometheus/dashboard exports are
//!   byte-identical serial vs `ExecMode::Parallel`.
//! * **Fault invariance** — the steady projection (served/hits/misses/
//!   out_rows) is byte-identical fault-free vs recovered, while the
//!   derived per-window recovery rounds are zero fault-free and sum
//!   exactly to the fault log's recovery-round charge when faults fire.
//! * **SLO gate** — the committed `slo/serve_steady.slo` parses to the
//!   in-code objectives and passes on the steady preset; slashing the
//!   cache budget must trip the hit-rate burn gate.

use parqp::faults::FaultSpec;
use parqp::metrics::{serve_presets, SLO_WINDOW_TICKS};
use parqp::mpc::{exec, ExecMode};
use parqp::obs::sketch::bucket_of;
use parqp::obs::{SeriesReport, SloRules};
use parqp::serve::{replay_observed, FaultSetup, ServeConfig, ServeReport};

const WINDOW: u64 = 6;

fn stream() -> ServeConfig {
    ServeConfig {
        servers: 4,
        tenants: 3,
        templates: 3,
        groups: 5,
        ticks: 24,
        seed: 42,
        cache_budget: 60_000,
        ..ServeConfig::default()
    }
}

fn faulted(cfg: &ServeConfig) -> ServeConfig {
    ServeConfig {
        faults: Some(FaultSetup {
            spec: FaultSpec {
                crashes: 2,
                ..FaultSpec::default()
            },
            horizon: 6,
            ..FaultSetup::default()
        }),
        ..cfg.clone()
    }
}

fn observed(cfg: &ServeConfig) -> (ServeReport, SeriesReport) {
    replay_observed(cfg, WINDOW).expect("valid config")
}

#[test]
fn window_series_tiles_the_serving_ledgers_exactly() {
    for cfg in [stream(), faulted(&stream())] {
        let (report, series) = observed(&cfg);
        let sum = |f: &dyn Fn(&parqp::obs::WindowStats) -> u64| -> u64 {
            series.windows.iter().map(f).sum()
        };
        assert_eq!(sum(&|w| w.served), report.served());
        assert_eq!(sum(&|w| w.rounds), report.totals.num_rounds() as u64);
        assert_eq!(sum(&|w| w.tuples), report.totals.total_tuples());
        assert_eq!(sum(&|w| w.words), report.totals.total_words());
        assert_eq!(
            sum(&|w| w.out_rows),
            report.records.iter().map(|r| r.out_rows).sum::<u64>()
        );
        // The cache ledger: every lookup lands in exactly one window.
        assert_eq!(sum(&|w| w.hits), report.cache.hits);
        assert_eq!(sum(&|w| w.misses), report.cache.misses);
        // The page-IO ledger: per-query deltas re-tile the totals.
        assert_eq!(sum(&|w| w.io_reads), report.io.reads);
        assert_eq!(sum(&|w| w.io_misses), report.io.misses);
        assert_eq!(sum(&|w| w.io_evictions), report.io.evictions);
        // Per-server tuples tile the per-server communication volume.
        for s in 0..cfg.servers {
            let windowed: u64 = series.windows.iter().map(|w| w.per_server_tuples[s]).sum();
            let ledger: u64 = report.totals.rounds.iter().map(|r| r.tuples[s]).sum();
            assert_eq!(windowed, ledger, "server {s}");
        }
    }
}

#[test]
fn every_query_lands_in_the_window_of_its_tick() {
    let (report, series) = observed(&stream());
    for w in &series.windows {
        let exact = report
            .records
            .iter()
            .filter(|r| (r.tick / WINDOW).min(series.windows.len() as u64 - 1) == w.index as u64)
            .count() as u64;
        assert_eq!(w.served, exact, "window {}", w.index);
    }
}

#[test]
fn sketched_percentiles_land_in_the_exact_buckets() {
    let (report, series) = observed(&stream());
    for w in &series.windows {
        let mut exact: Vec<u64> = report
            .records
            .iter()
            .filter(|r| (r.tick / WINDOW).min(series.windows.len() as u64 - 1) == w.index as u64)
            .map(|r| r.l)
            .collect();
        exact.sort_unstable();
        if exact.is_empty() {
            continue;
        }
        for pct in [50, 99] {
            let rank = (pct as usize * exact.len()).div_ceil(100).max(1);
            let truth = exact[rank - 1];
            let sketched = w.l_percentile(pct);
            assert_eq!(
                bucket_of(sketched),
                bucket_of(truth),
                "window {} p{pct}: sketch {sketched} vs exact {truth}",
                w.index
            );
        }
        assert_eq!(w.l_percentile(100), *exact.last().expect("non-empty"));
    }
}

#[test]
fn series_exports_are_byte_identical_serial_vs_parallel() {
    let (_, serial) = observed(&stream());
    let (_, parallel) = {
        let _guard = exec::install(ExecMode::Parallel { workers: 2 });
        observed(&stream())
    };
    assert_eq!(serial.jsonl(), parallel.jsonl());
    assert_eq!(serial.prometheus(), parallel.prometheus());
    assert_eq!(serial.dashboard(), parallel.dashboard());
}

#[test]
fn steady_projection_is_byte_identical_under_faults() {
    let (clean_report, clean) = observed(&stream());
    let (faulty_report, faulty) = observed(&faulted(&stream()));
    // Recovery inflates rounds, loads and IO — the full series must
    // show it (that is what the recovery sparkline renders) …
    assert_ne!(clean.jsonl(), faulty.jsonl());
    // … but the query mix it serves is untouched: the fault-invariant
    // projection exports byte-identically.
    assert_eq!(clean.steady_jsonl(), faulty.steady_jsonl());
    // Derived recovery rounds: zero everywhere fault-free, and exactly
    // the fault log's recovery-round charge when faults fire.
    assert!(clean_report.fault_log.is_none());
    assert!(clean.windows.iter().all(|w| w.recovery_rounds() == 0));
    let log = faulty_report.fault_log.as_ref().expect("faults fired");
    assert!(log.recovery_rounds > 0, "plan must actually fire");
    assert_eq!(
        faulty
            .windows
            .iter()
            .map(|w| w.recovery_rounds())
            .sum::<u64>(),
        log.recovery_rounds as u64
    );
}

fn committed_rules() -> SloRules {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../slo/serve_steady.slo");
    let src = std::fs::read_to_string(&path).expect("committed rules file exists");
    SloRules::parse(&src).expect("committed rules parse")
}

#[test]
fn committed_rules_file_matches_the_in_code_objectives() {
    assert_eq!(committed_rules(), SloRules::serve_steady());
}

#[test]
fn slo_gate_passes_on_the_steady_preset() {
    let presets = serve_presets(42);
    let (_, cfg) = presets
        .iter()
        .find(|(name, _)| *name == "steady/p8")
        .expect("steady preset exists");
    let (_, series) = replay_observed(cfg, SLO_WINDOW_TICKS).expect("valid config");
    let verdict = committed_rules().evaluate(&series);
    verdict.gate().expect("committed objectives hold");
}

#[test]
fn slashing_the_cache_budget_trips_the_hit_rate_gate() {
    let presets = serve_presets(42);
    let (_, steady) = presets
        .iter()
        .find(|(name, _)| *name == "steady/p8")
        .expect("steady preset exists");
    // A seeded regression: the cache still takes lookups but can no
    // longer retain anything, so the hit-rate floor burns window after
    // window. The gate must catch it.
    let starved = ServeConfig {
        cache_budget: 1,
        ..steady.clone()
    };
    let (_, series) = replay_observed(&starved, SLO_WINDOW_TICKS).expect("valid config");
    let err = committed_rules()
        .evaluate(&series)
        .gate()
        .expect_err("starved cache must burn");
    assert!(err.contains("hit_rate_floor"), "got: {err}");
}
