//! Fractional edge packings, covers and the AGM bound.
//!
//! Slide 39 defines the two LPs on a query hypergraph:
//!
//! * **fractional vertex cover**: weights `w_v ≥ 0` with
//!   `Σ_{v ∈ S_j} w_v ≥ 1` for every edge; minimize `Σ w_v`;
//! * **fractional edge packing**: weights `u_j ≥ 0` with
//!   `Σ_{j ∋ v} u_j ≤ 1` for every vertex; maximize `Σ u_j`.
//!
//! LP duality gives `min Σ w = max Σ u = τ*` — the exponent in the
//! skew-free one-round load `L = IN / p^{1/τ*}` (slides 40–41).
//!
//! Slide 55 uses the **fractional edge cover** (`Σ_{j ∋ v} u_j ≥ 1`,
//! minimize `Σ u_j`), whose optimum ρ\* gives the AGM output bound
//! `|OUT| ≤ IN^{ρ*}`, and in weighted form
//! `|OUT| ≤ ∏_j |S_j|^{u_j}`.

use crate::hypergraph::Hypergraph;
use crate::simplex::{solve, Constraint, ConstraintOp, LinearProgram, LpOutcome};

/// An optimal fractional weighting of a hypergraph LP.
#[derive(Debug, Clone)]
pub struct FractionalWeights {
    /// One weight per edge (packings/covers) or per vertex (vertex cover).
    pub weights: Vec<f64>,
    /// The optimal LP value (τ\* or ρ\*).
    pub value: f64,
}

/// Maximum fractional edge packing: returns the per-edge weights `u` and
/// `τ* = Σ u_j`.
pub fn fractional_edge_packing(h: &Hypergraph) -> FractionalWeights {
    let m = h.num_edges();
    let constraints = (0..h.num_vertices())
        .map(|v| {
            let coeffs = (0..m)
                .map(|j| f64::from(u8::from(h.edge_contains(j, v))))
                .collect();
            Constraint::new(coeffs, ConstraintOp::Le, 1.0)
        })
        .collect();
    let lp = LinearProgram {
        objective: vec![1.0; m],
        maximize: true,
        constraints,
    };
    let s = solve(&lp).expect_optimal("edge packing LP is always feasible (u = 0)");
    FractionalWeights {
        weights: s.x,
        value: s.objective,
    }
}

/// Minimum fractional vertex cover: per-vertex weights `w` and
/// `τ* = Σ w_v` (equal to the packing optimum by LP duality).
pub fn fractional_vertex_cover(h: &Hypergraph) -> FractionalWeights {
    let n = h.num_vertices();
    let constraints = h
        .edges()
        .iter()
        .map(|e| {
            let mut coeffs = vec![0.0; n];
            for &v in e {
                coeffs[v] = 1.0;
            }
            Constraint::new(coeffs, ConstraintOp::Ge, 1.0)
        })
        .collect();
    let lp = LinearProgram {
        objective: vec![1.0; n],
        maximize: false,
        constraints,
    };
    let s = solve(&lp).expect_optimal("vertex cover LP is always feasible (w = 1)");
    FractionalWeights {
        weights: s.x,
        value: s.objective,
    }
}

/// Minimum fractional edge cover: per-edge weights `u` and `ρ* = Σ u_j`.
///
/// # Panics
/// Panics if some vertex appears in no edge (then no cover exists).
pub fn fractional_edge_cover(h: &Hypergraph) -> FractionalWeights {
    assert!(
        h.all_vertices_covered(),
        "edge cover requires every vertex in some edge"
    );
    let m = h.num_edges();
    let constraints = (0..h.num_vertices())
        .map(|v| {
            let coeffs = (0..m)
                .map(|j| f64::from(u8::from(h.edge_contains(j, v))))
                .collect();
            Constraint::new(coeffs, ConstraintOp::Ge, 1.0)
        })
        .collect();
    let lp = LinearProgram {
        objective: vec![1.0; m],
        maximize: false,
        constraints,
    };
    let s = solve(&lp).expect_optimal("edge cover LP feasible when all vertices covered");
    FractionalWeights {
        weights: s.x,
        value: s.objective,
    }
}

/// The (weighted) AGM bound on the output size:
/// `|OUT| ≤ ∏_j |S_j|^{u_j}` minimized over fractional edge covers `u`
/// (slide 55). `sizes[j]` is `|S_j|`; returns the bound as `f64`.
///
/// Minimizing `∏ |S_j|^{u_j}` is the LP `min Σ u_j · ln|S_j|` over edge
/// covers, solved exactly; relations of size 0 make the bound 0.
///
/// # Panics
/// Panics if `sizes.len() != h.num_edges()` or some vertex is uncovered.
pub fn agm_bound(h: &Hypergraph, sizes: &[u64]) -> f64 {
    assert_eq!(sizes.len(), h.num_edges(), "one size per edge required");
    assert!(
        h.all_vertices_covered(),
        "AGM bound requires every vertex covered"
    );
    if sizes.contains(&0) {
        // An empty relation that covers anything forces an empty output
        // only if we may put weight on it; the safe exact statement:
        // an empty atom makes the whole join empty.
        return 0.0;
    }
    let m = h.num_edges();
    let objective: Vec<f64> = sizes.iter().map(|&s| (s as f64).ln()).collect();
    let constraints = (0..h.num_vertices())
        .map(|v| {
            let coeffs = (0..m)
                .map(|j| f64::from(u8::from(h.edge_contains(j, v))))
                .collect();
            Constraint::new(coeffs, ConstraintOp::Ge, 1.0)
        })
        .collect();
    let lp = LinearProgram {
        objective,
        maximize: false,
        constraints,
    };
    match solve(&lp) {
        LpOutcome::Optimal(s) => s.objective.exp(),
        other => panic!("AGM LP must be feasible: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    #[test]
    fn triangle_tau_three_halves() {
        // Slide 41: triangle τ* = 3/2 with weights (1/2, 1/2, 1/2).
        let p = fractional_edge_packing(&Hypergraph::triangle());
        assert!(close(p.value, 1.5), "τ* = {}", p.value);
        assert!(p.weights.iter().all(|&u| close(u, 0.5)));
    }

    #[test]
    fn two_way_tau_one() {
        // Slide 41: R(x,y) ⋈ S(y,z) has τ* = 1.
        let p = fractional_edge_packing(&Hypergraph::two_way());
        assert!(close(p.value, 1.0), "τ* = {}", p.value);
    }

    #[test]
    fn semijoin_pair_tau_two() {
        // Slide 53: R(x), S(x,y), T(y) has τ* = 2 (pack R and T).
        let p = fractional_edge_packing(&Hypergraph::semijoin_pair());
        assert!(close(p.value, 2.0), "τ* = {}", p.value);
    }

    #[test]
    fn chain_tau_is_ceil_half() {
        // Chain-n packs ⌈n/2⌉ alternating edges; slide 62's chain-20 has τ* = 10.
        for (n, expect) in [(2, 1.0), (3, 2.0), (5, 3.0), (20, 10.0)] {
            let p = fractional_edge_packing(&Hypergraph::chain(n));
            assert!(close(p.value, expect), "chain-{n}: τ* = {}", p.value);
        }
    }

    #[test]
    fn cycle_tau_half() {
        let p = fractional_edge_packing(&Hypergraph::cycle(5));
        assert!(close(p.value, 2.5), "τ* = {}", p.value);
    }

    #[test]
    fn star_tau_n() {
        // Star-n: all leaves are independent; packing weight 1 per edge is
        // blocked only at the center... center constraint: Σ u ≤ 1? Every
        // edge contains the center, so τ* = 1.
        let p = fractional_edge_packing(&Hypergraph::star(4));
        assert!(close(p.value, 1.0), "τ* = {}", p.value);
    }

    #[test]
    fn duality_packing_equals_vertex_cover() {
        for h in [
            Hypergraph::triangle(),
            Hypergraph::chain(4),
            Hypergraph::cycle(6),
            Hypergraph::star(3),
            Hypergraph::semijoin_pair(),
            Hypergraph::ladder(),
        ] {
            let p = fractional_edge_packing(&h);
            let c = fractional_vertex_cover(&h);
            assert!(
                close(p.value, c.value),
                "duality gap: {} vs {}",
                p.value,
                c.value
            );
        }
    }

    #[test]
    fn packing_weights_feasible() {
        for h in [
            Hypergraph::triangle(),
            Hypergraph::chain(5),
            Hypergraph::ladder(),
        ] {
            let p = fractional_edge_packing(&h);
            for v in 0..h.num_vertices() {
                let load: f64 = (0..h.num_edges())
                    .filter(|&j| h.edge_contains(j, v))
                    .map(|j| p.weights[j])
                    .sum();
                assert!(load <= 1.0 + 1e-7, "vertex {v} overpacked: {load}");
            }
        }
    }

    #[test]
    fn triangle_edge_cover_three_halves() {
        // Triangle: ρ* = 3/2 as well (self-dual shape).
        let c = fractional_edge_cover(&Hypergraph::triangle());
        assert!(close(c.value, 1.5), "ρ* = {}", c.value);
    }

    #[test]
    fn semijoin_pair_edge_cover_one() {
        // Slide 55: R(x), S(x,y), T(y): ρ* = 1 — S alone covers both vars.
        let c = fractional_edge_cover(&Hypergraph::semijoin_pair());
        assert!(close(c.value, 1.0), "ρ* = {}", c.value);
        assert!(close(c.weights[1], 1.0));
    }

    #[test]
    fn ladder_cover_two_packing_three() {
        let h = Hypergraph::ladder();
        assert!(close(fractional_edge_cover(&h).value, 2.0));
        assert!(close(fractional_edge_packing(&h).value, 3.0));
    }

    #[test]
    fn agm_triangle_equal_sizes() {
        // |OUT| ≤ (N·N·N)^{1/2} = N^{3/2}.
        let b = agm_bound(&Hypergraph::triangle(), &[100, 100, 100]);
        assert!(close(b, 1000.0), "AGM = {b}");
    }

    #[test]
    fn agm_two_way_product() {
        // R(x,y) ⋈ S(y,z): cover needs u_R = u_S = 1 → bound |R|·|S|.
        let b = agm_bound(&Hypergraph::two_way(), &[10, 20]);
        assert!(close(b, 200.0), "AGM = {b}");
    }

    #[test]
    fn agm_unequal_triangle() {
        // min over covers of |R|^{u1}|S|^{u2}|T|^{u3}; with one tiny
        // relation the optimum shifts weight onto it.
        let equal = agm_bound(&Hypergraph::triangle(), &[1000, 1000, 1000]);
        let skewed = agm_bound(&Hypergraph::triangle(), &[10, 1000, 1000]);
        assert!(skewed < equal);
        // Cover (1,1,0)... wait, {x,y} ∪ {y,z} covers all: |R||S| = 10⁴ vs
        // √(10·10⁶·10⁶)... the LP must pick the better one.
        assert!(skewed <= 10_000.0 + 1e-6);
    }

    #[test]
    fn agm_empty_relation_zero() {
        assert_eq!(agm_bound(&Hypergraph::triangle(), &[0, 5, 5]), 0.0);
    }

    #[test]
    #[should_panic(expected = "every vertex")]
    fn edge_cover_requires_coverage() {
        fractional_edge_cover(&Hypergraph::new(2, vec![vec![0]]));
    }
}
