//! Fixture: serving-layer-clean code — replays a stream and reads the
//! resulting report; cache admission and tenant tallying stay inside
//! parqp-serve.

use parqp_serve::{replay, ServeConfig};

pub fn serve_summary(cfg: &ServeConfig) -> Result<(u64, f64), String> {
    let report = replay(cfg)?;
    Ok((report.l_percentile(99), report.cache.hit_rate()))
}

pub fn tenant_hit_rates(cfg: &ServeConfig) -> Result<Vec<f64>, String> {
    let report = replay(cfg)?;
    Ok(report.tenants.iter().map(|t| t.hit_rate()).collect())
}
