//! Parallel Sorting by Regular Sampling (PSRS), slides 100–102.
//!
//! 1. every server sorts its local data and extracts `p−1` evenly spaced
//!    local splitters (the *regular sample*);
//! 2. every server broadcasts its sample (one communication round);
//! 3. all servers deterministically sort the union of samples and keep
//!    every `p`-th element as the global splitters;
//! 4. every item is routed to the server owning its splitter interval
//!    (second communication round); each server sorts locally.
//!
//! The result is globally sorted: every key on server `i` is ≤ every key
//! on server `i+1`. The regular-sampling guarantee bounds each server's
//! load by `Θ(N/p)` for `p ≪ N^{1/3}` (slide 102) — and degrades under
//! duplicate-heavy inputs, which is exactly the skew effect the sort-based
//! join must handle (slide 31).

use parqp_mpc::{metrics, trace, Cluster, Weight};

/// Sort `u64` keys across the cluster. Returns per-server partitions,
/// globally sorted. See [`psrs_by`] for the generic version.
///
/// ```
/// use parqp_mpc::Cluster;
///
/// let mut cluster = Cluster::new(4);
/// let local = cluster.scatter((0..100u64).rev().collect());
/// let parts = parqp_sort::psrs(&mut cluster, local);
/// assert_eq!(parts.concat(), (0..100u64).collect::<Vec<_>>());
/// assert_eq!(cluster.report().num_rounds(), 2);
/// ```
pub fn psrs(cluster: &mut Cluster, local: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    psrs_by(cluster, local, |&k| k)
}

/// Sort arbitrary items by a `u64` key across the cluster.
///
/// `local` holds each server's input (index = server rank). The output is
/// per-server partitions such that all keys on server `i` are ≤ all keys
/// on server `i+1`, and each partition is sorted by key. Ties stay on one
/// server only if the splitters separate them — duplicate-heavy inputs can
/// and do cross partition boundaries (handled by callers that care, e.g.
/// the sort-merge join).
///
/// Costs 2 communication rounds on `cluster`.
///
/// # Panics
/// Panics if `local.len() != cluster.p()`.
pub fn psrs_by<T, K>(
    cluster: &mut Cluster,
    local: Vec<Vec<T>>,
    key: impl Fn(&T) -> K + Sync,
) -> Vec<Vec<T>>
where
    T: Clone + Weight + Send,
    K: Ord + Copy + Weight,
{
    let p = cluster.p();
    assert_eq!(local.len(), p, "one input partition per server required");
    if metrics::is_enabled() {
        // Slide 102: ideal load Θ(N/p) for the routing round (regular
        // sampling keeps the overshoot under 2×), while the sample
        // broadcast costs exactly p(p−1) keys per server and dominates
        // once p ≳ N^{1/3}.
        let n: usize = local.iter().map(Vec::len).sum();
        metrics::announce(&metrics::PaperBound::tuples(
            "psrs",
            (n as f64 / p as f64).max((p * (p - 1)) as f64),
            2,
        ));
    }

    // Phase 1: local sort + regular sample.
    let local: Vec<Vec<T>> = cluster.map(local, |_, mut part| {
        part.sort_by_key(|t| key(t)); // parqp-lint: allow(PQ404) caller-supplied key extractor, pure by contract
        part
    });
    // Round 1: broadcast regular samples (p−1 keys per server).
    let sample_span = trace::span("psrs/sample-broadcast");
    let mut ex = cluster.exchange::<K>();
    for (sid, part) in local.iter().enumerate() {
        ex.set_sender(sid);
        for s in regular_sample(part, p, &key) {
            ex.broadcast(s);
        }
    }
    let samples = ex.finish();
    drop(sample_span);

    // Phase 2: identical splitter computation everywhere. All inboxes see
    // the same multiset; we compute once and assert agreement in debug.
    let mut all: Vec<K> = samples[0].clone();
    all.sort_unstable();
    debug_assert!(samples.iter().all(|s| {
        let mut t = s.clone();
        t.sort_unstable();
        t == all
    }));
    let splitters = choose_splitters(&all, p);

    // Round 2: route every item to its interval's server; local sort.
    // The routing scan streams each server's run through its buffer
    // pool (one logical read per item) when a paged store is installed.
    let _span = trace::span("psrs/route");
    let mut ex = cluster.exchange::<T>();
    for (sid, part) in local.into_iter().enumerate() {
        ex.set_sender(sid);
        let mut io = parqp_data::paged::IoCursor::new(sid);
        for item in part {
            io.read(item.words() as usize);
            let k = key(&item);
            let dest = splitters.partition_point(|&s| s < k);
            ex.send(dest.min(p - 1), item);
        }
    }
    let partitions = ex.finish();
    cluster.map(partitions, |_, mut part| {
        part.sort_by_key(|t| key(t)); // parqp-lint: allow(PQ404) caller-supplied key extractor, pure by contract
        part
    })
}

/// `p−1` evenly spaced keys from a locally sorted partition (fewer if the
/// partition is smaller than `p−1`).
fn regular_sample<T, K: Copy>(sorted: &[T], p: usize, key: &impl Fn(&T) -> K) -> Vec<K> {
    let n = sorted.len();
    if n == 0 || p <= 1 {
        return Vec::new();
    }
    (1..p)
        .map(|i| key(&sorted[(i * n / p).min(n - 1)]))
        .collect()
}

/// Every `p`-th element of the sorted union of samples: the `p−1` global
/// splitters (slide 101).
fn choose_splitters<K: Copy>(sorted_samples: &[K], p: usize) -> Vec<K> {
    let n = sorted_samples.len();
    if n == 0 || p <= 1 {
        return Vec::new();
    }
    (1..p)
        .map(|i| sorted_samples[(i * n / p).min(n - 1)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_testkit::Rng;

    fn run_psrs(p: usize, items: Vec<u64>) -> (Vec<Vec<u64>>, parqp_mpc::LoadReport) {
        let mut cluster = Cluster::new(p);
        let local = cluster.scatter(items);
        let parts = psrs(&mut cluster, local);
        (parts, cluster.report())
    }

    #[test]
    fn globally_sorted_and_permutation() {
        let mut rng = Rng::seed_from_u64(1);
        let items: Vec<u64> = (0..10_000)
            .map(|_| rng.gen_range(0..1_000_000u64))
            .collect();
        let (parts, report) = run_psrs(8, items.clone());
        let flat: Vec<u64> = parts.concat();
        let mut expect = items;
        expect.sort_unstable();
        assert_eq!(flat, expect);
        assert_eq!(report.num_rounds(), 2);
    }

    #[test]
    fn partitions_are_range_disjoint() {
        let items: Vec<u64> = (0..5000).rev().collect();
        let (parts, _) = run_psrs(5, items);
        for w in parts.windows(2) {
            if let (Some(&hi), Some(&lo)) = (w[0].last(), w[1].first()) {
                assert!(hi <= lo);
            }
        }
    }

    #[test]
    fn load_near_n_over_p() {
        // Slide 102: L = Θ(N/p) for p ≪ N^{1/3}.
        let n = 64_000u64;
        let p = 16;
        let mut rng = Rng::seed_from_u64(3);
        let items: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let (_, report) = run_psrs(p, items);
        let load = report.max_load_tuples() as f64;
        let ideal = n as f64 / p as f64;
        // The routing round dominates; regular sampling keeps it < 2·N/p
        // (the classical PSRS bound), plus the small sample broadcast.
        assert!(
            load < 2.0 * ideal + (p * p) as f64,
            "L = {load}, N/p = {ideal}"
        );
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let (parts, _) = run_psrs(4, vec![]);
        assert!(parts.iter().all(Vec::is_empty));
        let (parts, _) = run_psrs(4, vec![42]);
        assert_eq!(parts.concat(), vec![42]);
        let (parts, _) = run_psrs(1, vec![3, 1, 2]);
        assert_eq!(parts.concat(), vec![1, 2, 3]);
    }

    #[test]
    fn duplicates_preserved() {
        let items = vec![5u64; 1000];
        let (parts, _) = run_psrs(4, items);
        assert_eq!(parts.concat(), vec![5u64; 1000]);
    }

    #[test]
    fn generic_key_extraction() {
        // Sort (key, payload) pairs by key only.
        let mut cluster = Cluster::new(3);
        let items: Vec<(u64, u64)> = (0..300).map(|i| (299 - i, i)).collect();
        let local = cluster.scatter(items);
        let parts = psrs_by(&mut cluster, local, |t| t.0);
        let flat: Vec<(u64, u64)> = parts.concat();
        let keys: Vec<u64> = flat.iter().map(|t| t.0).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(keys, expect);
        // payload preserved
        assert_eq!(flat.iter().map(|t| t.1).sum::<u64>(), (0..300).sum::<u64>());
    }
}
