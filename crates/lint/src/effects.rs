//! Pass 3 of the effect analyzer: worker roots, effect propagation,
//! and the PQ401–PQ404 rule family.
//!
//! PR 6's byte-identity argument (see `crates/mpc/src/exec.rs`) rests
//! on a convention: closures handed to `Cluster::map`/`Cluster::try_map`
//! run on `WorkerPool` threads and must be **pure compute** — all
//! observable effects (trace/metrics/faults emission, ledger
//! accounting, exchange sends) and all shared state stay on the calling
//! thread. This pass turns that convention into a checked property:
//!
//! 1. find every **worker root** — a `.map(`/`.try_map(` call on a
//!    receiver named `…cluster`/`…pool` outside test code;
//! 2. scan the closure argument's span for direct effect tokens and
//!    resolve its calls via [`crate::callgraph`];
//! 3. propagate per-function effect summaries (a three-point lattice:
//!    Observable / SharedState / ThreadLocal) callee→caller to a
//!    fixpoint, caching one exemplar site per effect so diagnostics can
//!    show the full propagation chain;
//! 4. report: **PQ401** worker-reachable code emits observables,
//!    **PQ402** touches interior mutability / shared state, **PQ403**
//!    accesses thread-locals, **PQ404** a call could not be bound
//!    (sound-by-default: unresolved means "explicitly allow it or fix
//!    it", never "silently assume pure").
//!
//! Soundness caveats (also in DESIGN.md): resolution is textual, so
//! methods bind by name union and a handful of std-ubiquitous names
//! (`map`, `clone`, …) are assumed std-pure; std cannot call back into
//! this workspace's effect APIs, so the escape is one-directional.

use crate::callgraph::{self, Callee, Index, Resolution, ResolveCtx};
use crate::items::{self, FnItem};
use crate::rules::{contains_token, find_struct_literal};
use crate::tokenize::SourceFile;
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The effect lattice. Each kind maps to one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// PQ401 — trace/metrics/faults emission, exchange sends, ledger
    /// accounting (`RoundStats`/`LoadReport` construction).
    Observable,
    /// PQ402 — interior mutability and shared state (`RefCell`,
    /// `Mutex`, atomics, `static mut`, …).
    SharedState,
    /// PQ403 — thread-local access (the trace/faults/metrics/exec
    /// runtimes are thread-local slots workers must never see).
    ThreadLocal,
}

const EFFECTS: [Effect; 3] = [Effect::Observable, Effect::SharedState, Effect::ThreadLocal];

impl Effect {
    pub fn rule(self) -> &'static str {
        match self {
            Effect::Observable => "PQ401",
            Effect::SharedState => "PQ402",
            Effect::ThreadLocal => "PQ403",
        }
    }
    fn idx(self) -> usize {
        match self {
            Effect::Observable => 0,
            Effect::SharedState => 1,
            Effect::ThreadLocal => 2,
        }
    }
    fn describe(self) -> &'static str {
        match self {
            Effect::Observable => "emits an observable effect",
            Effect::SharedState => "touches shared mutable state",
            Effect::ThreadLocal => "accesses a thread-local",
        }
    }
}

/// Qualified-path tokens with a fixed effect (matched with the same
/// ident-boundary rules as the PQ1xx token rules).
const PATH_EFFECT_TOKENS: &[(&str, Effect)] = &[
    ("trace::emit", Effect::Observable),
    ("parqp_trace::emit", Effect::Observable),
    ("metrics::emit", Effect::Observable),
    ("parqp_metrics::emit", Effect::Observable),
    ("metrics::announce", Effect::Observable),
    ("parqp_metrics::announce", Effect::Observable),
    ("next_round_faults", Effect::Observable),
    ("note_injected", Effect::Observable),
    ("note_recovery", Effect::Observable),
    ("trace::span", Effect::ThreadLocal),
    ("parqp_trace::span", Effect::ThreadLocal),
    ("trace::install", Effect::ThreadLocal),
    ("parqp_trace::install", Effect::ThreadLocal),
    ("trace::capture", Effect::ThreadLocal),
    ("parqp_trace::capture", Effect::ThreadLocal),
    ("metrics::install", Effect::ThreadLocal),
    ("parqp_metrics::install", Effect::ThreadLocal),
    ("metrics::capture", Effect::ThreadLocal),
    ("parqp_metrics::capture", Effect::ThreadLocal),
    ("faults::install", Effect::ThreadLocal),
    ("parqp_faults::install", Effect::ThreadLocal),
    ("faults::capture", Effect::ThreadLocal),
    ("parqp_faults::capture", Effect::ThreadLocal),
    ("exec::install", Effect::ThreadLocal),
    ("exec::install_pool", Effect::ThreadLocal),
    ("exec::with_mode", Effect::ThreadLocal),
    ("exec::current", Effect::ThreadLocal),
    ("exec::snapshot", Effect::ThreadLocal),
];

/// Type names whose mention marks the line (construction or capture of
/// the type counts — a worker closure holding a `RefCell` is the hazard
/// whether or not it borrows on that exact line).
const TYPE_EFFECT_TOKENS: &[(&str, Effect)] = &[
    ("TraceEvent", Effect::Observable),
    ("RoundStats", Effect::Observable),
    ("RefCell", Effect::SharedState),
    ("Cell", Effect::SharedState),
    ("UnsafeCell", Effect::SharedState),
    ("Mutex", Effect::SharedState),
    ("RwLock", Effect::SharedState),
    ("Condvar", Effect::SharedState),
    ("OnceLock", Effect::SharedState),
    ("OnceCell", Effect::SharedState),
    ("LazyLock", Effect::SharedState),
    ("AtomicBool", Effect::SharedState),
    ("AtomicUsize", Effect::SharedState),
    ("AtomicIsize", Effect::SharedState),
    ("AtomicU8", Effect::SharedState),
    ("AtomicU16", Effect::SharedState),
    ("AtomicU32", Effect::SharedState),
    ("AtomicU64", Effect::SharedState),
    ("AtomicI8", Effect::SharedState),
    ("AtomicI16", Effect::SharedState),
    ("AtomicI32", Effect::SharedState),
    ("AtomicI64", Effect::SharedState),
    ("AtomicPtr", Effect::SharedState),
    ("static mut", Effect::SharedState),
    ("thread_local", Effect::ThreadLocal),
    ("LocalKey", Effect::ThreadLocal),
];

/// Method names that *are* the effect, checked before resolution (the
/// receiver's type is unknown, so the name itself is the signal; none
/// of these names has a pure workspace homonym).
const METHOD_EFFECTS: &[(&str, Effect)] = &[
    ("send", Effect::Observable),
    ("broadcast", Effect::Observable),
    ("send_matching", Effect::Observable),
    ("finish", Effect::Observable),
    ("finish_untracked", Effect::Observable),
    ("record_round", Effect::Observable),
    ("try_record_round", Effect::Observable),
    ("exchange", Effect::Observable),
    ("set_sender", Effect::Observable),
    ("borrow_mut", Effect::SharedState),
    ("lock", Effect::SharedState),
    ("get_or_init", Effect::SharedState),
    ("fetch_add", Effect::SharedState),
    ("fetch_sub", Effect::SharedState),
    ("fetch_or", Effect::SharedState),
    ("fetch_and", Effect::SharedState),
    ("fetch_xor", Effect::SharedState),
    ("compare_exchange", Effect::SharedState),
    ("compare_exchange_weak", Effect::SharedState),
    ("with", Effect::ThreadLocal),
];

const MACRO_EFFECTS: &[(&str, Effect)] = &[
    ("thread_local", Effect::ThreadLocal),
    ("println", Effect::Observable),
    ("print", Effect::Observable),
    ("eprintln", Effect::Observable),
    ("eprint", Effect::Observable),
];

/// One file handed to [`analyze`].
pub struct FileInput<'a> {
    pub crate_name: &'a str,
    /// Workspace-relative path, e.g. `crates/join/src/twoway.rs`.
    pub path: &'a str,
    pub file: &'a SourceFile,
}

/// A detected worker root (for the JSON report and the self-check
/// test: the analysis must *find* the real worker phases, not
/// vacuously pass).
#[derive(Debug, Clone)]
pub struct RootInfo {
    pub path: String,
    pub line: usize,
    pub crate_name: String,
    /// Whether the job argument is a closure literal.
    pub closure: bool,
    /// Number of workspace functions reachable from this root.
    pub reachable_fns: usize,
}

pub struct EffectReport {
    /// Raw (unsuppressed) PQ401–PQ404 diagnostics; the caller applies
    /// `allow(...)` filtering so usage can feed the PQ408 pass.
    pub diagnostics: Vec<Diagnostic>,
    pub roots: Vec<RootInfo>,
}

/// Where a function's effect was observed: directly on a line of its
/// body, or via a call to another function.
#[derive(Debug, Clone)]
enum Exemplar {
    Direct { line: usize, what: String },
    Via { line: usize, callee: usize },
}

#[derive(Default, Clone)]
struct Summary {
    effects: [Option<Exemplar>; 3],
    /// `(line, targets)` resolved call edges.
    edges: Vec<(usize, Vec<usize>)>,
    /// `(line, display, reason)` unresolved calls.
    unresolved: Vec<(usize, String, &'static str)>,
}

/// Crates whose closure-less `pool.map(items, f)` forwarding is the
/// sanctioned plumbing between `Cluster` and the pool — everywhere
/// else a worker job must be a closure literal the analyzer can see
/// into.
const PLUMBING_CRATES: &[&str] = &["mpc", "testkit"];

fn first_direct_effect(code: &str) -> [Option<String>; 3] {
    let mut found: [Option<String>; 3] = [None, None, None];
    for (tok, eff) in PATH_EFFECT_TOKENS {
        if found[eff.idx()].is_none() && contains_token(code, tok) {
            found[eff.idx()] = Some(format!("`{tok}`"));
        }
    }
    for (tok, eff) in TYPE_EFFECT_TOKENS {
        if found[eff.idx()].is_none() && contains_token(code, tok) {
            found[eff.idx()] = Some(format!("`{tok}`"));
        }
    }
    if found[Effect::Observable.idx()].is_none()
        && find_struct_literal(code, "LoadReport").is_some()
    {
        found[Effect::Observable.idx()] = Some("`LoadReport { .. }` construction".to_string());
    }
    for call in callgraph::calls_in_line(code) {
        match &call.callee {
            Callee::Method { name, .. } => {
                for (m, eff) in METHOD_EFFECTS {
                    if name == m && found[eff.idx()].is_none() {
                        found[eff.idx()] = Some(format!("`.{m}(..)`"));
                    }
                }
            }
            Callee::Macro { name } => {
                for (m, eff) in MACRO_EFFECTS {
                    if name == m && found[eff.idx()].is_none() {
                        found[eff.idx()] = Some(format!("`{m}!`"));
                    }
                }
            }
            _ => {}
        }
    }
    found
}

/// Is this path call itself one of the effect tokens (`trace::emit`,
/// `metrics::announce`, …)? Those are fully accounted for by the
/// direct-effect scan, so call resolution skips them — resolving would
/// either double-report through the runtime crate's body or, when that
/// crate is absent from the analyzed set, produce a spurious PQ404.
fn is_effect_token_call(callee: &Callee) -> bool {
    if let Callee::Path { segs } = callee {
        let joined = segs.join("::");
        return PATH_EFFECT_TOKENS
            .iter()
            .any(|(tok, _)| joined == *tok || joined.ends_with(&format!("::{tok}")));
    }
    false
}

/// Is this method call a worker root? (`recv.map(` / `recv.try_map(`
/// with a receiver whose name ends in `cluster` or `pool`.)
fn is_root_call(callee: &Callee) -> bool {
    if let Callee::Method { name, recv } = callee {
        if name == "map" || name == "try_map" {
            if let Some(r) = recv {
                let r = r.to_ascii_lowercase();
                return r.ends_with("cluster") || r.ends_with("pool");
            }
        }
    }
    false
}

struct FileModel<'a> {
    input: &'a FileInput<'a>,
    items: Vec<FnItem>,
    owners: Vec<Option<usize>>,
}

/// Run the full analysis over the workspace file set.
pub fn analyze(files: &[FileInput]) -> EffectReport {
    // ---- pass 1: item models -------------------------------------
    let models: Vec<FileModel> = files
        .iter()
        .map(|input| {
            let items = items::extract_with_owners(input.file);
            let owners = items::line_owners(&items, input.file.lines.len());
            FileModel {
                input,
                items,
                owners,
            }
        })
        .collect();

    // ---- pass 2: global index + per-item summaries ---------------
    let index = Index::build(
        models
            .iter()
            .map(|m| (m.input.crate_name.to_string(), m.items.clone()))
            .collect(),
    );
    // Global item id -> (file_idx, local item idx) is implicit in the
    // index build order; recover the per-file local offsets.
    let mut file_item_base = Vec::with_capacity(models.len());
    {
        let mut base = 0;
        for m in &models {
            file_item_base.push(base);
            base += m.items.len();
        }
    }

    let mut summaries: Vec<Summary> = vec![Summary::default(); index.items.len()];
    for (file_idx, m) in models.iter().enumerate() {
        for (local, item) in m.items.iter().enumerate() {
            if item.is_test || !item.has_body {
                continue;
            }
            let global = file_item_base[file_idx] + local;
            let ctx = ResolveCtx {
                crate_name: m.input.crate_name,
                file_idx,
                owner: item.owner.as_deref(),
                params: &item.params,
                is_test: false,
            };
            let mut summary = Summary::default();
            for line in &m.input.file.lines[item.sig_line - 1..item.end_line] {
                // Lines owned by a nested fn are that item's business.
                if m.owners[line.number - 1] != Some(local) {
                    continue;
                }
                let direct = first_direct_effect(&line.code);
                for eff in EFFECTS {
                    if summary.effects[eff.idx()].is_none() {
                        if let Some(what) = &direct[eff.idx()] {
                            summary.effects[eff.idx()] = Some(Exemplar::Direct {
                                line: line.number,
                                what: what.clone(),
                            });
                        }
                    }
                }
                let mut targets_here: Vec<usize> = Vec::new();
                for call in callgraph::calls_in_line(&line.code) {
                    if is_root_call(&call.callee) {
                        continue; // roots are entry points, not edges
                    }
                    if is_effect_token_call(&call.callee) {
                        continue; // accounted as a direct effect above
                    }
                    match index.resolve(&call.callee, &ctx) {
                        Resolution::Edges(t) => targets_here.extend(t),
                        Resolution::Pure => {}
                        Resolution::Unresolved { reason } => {
                            summary
                                .unresolved
                                .push((line.number, call.callee.display(), reason));
                        }
                    }
                }
                if !targets_here.is_empty() {
                    targets_here.sort_unstable();
                    targets_here.dedup();
                    summary.edges.push((line.number, targets_here));
                }
            }
            summaries[global] = summary;
        }
    }

    // ---- pass 3: fixpoint propagation callee -> caller -----------
    loop {
        let mut changed = false;
        for caller in 0..summaries.len() {
            for eff in EFFECTS {
                if summaries[caller].effects[eff.idx()].is_some() {
                    continue;
                }
                let mut hit = None;
                'edges: for (line, targets) in &summaries[caller].edges {
                    for &t in targets {
                        if t != caller && summaries[t].effects[eff.idx()].is_some() {
                            hit = Some(Exemplar::Via {
                                line: *line,
                                callee: t,
                            });
                            break 'edges;
                        }
                    }
                }
                if let Some(ex) = hit {
                    summaries[caller].effects[eff.idx()] = Some(ex);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- pass 4: roots -------------------------------------------
    let mut diagnostics = Vec::new();
    let mut roots = Vec::new();
    let mut reported_unresolved: BTreeSet<(String, usize, String)> = BTreeSet::new();

    for (file_idx, m) in models.iter().enumerate() {
        let lines = &m.input.file.lines;
        for (li, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            if !callgraph::calls_in_line(&line.code)
                .iter()
                .any(|c| is_root_call(&c.callee))
            {
                continue;
            }
            // Region: from the root line to the line closing the call's
            // parenthesis group (sanitized code, so strings can't
            // unbalance it).
            let mut depth = 0i64;
            let mut end = li;
            let mut started = false;
            'scan: for (lj, l) in lines.iter().enumerate().skip(li) {
                for ch in l.code.chars() {
                    match ch {
                        '(' => {
                            depth += 1;
                            started = true;
                        }
                        ')' => {
                            depth -= 1;
                            if started && depth <= 0 {
                                end = lj;
                                break 'scan;
                            }
                        }
                        _ => {}
                    }
                }
                end = lj;
            }
            let region = &lines[li..=end];
            let has_closure = region.iter().any(|l| l.code.contains('|'));
            let root_path = m.input.path;
            let root_line = line.number;

            if !has_closure {
                if !PLUMBING_CRATES.contains(&m.input.crate_name) {
                    diagnostics.push(Diagnostic {
                        rule: "PQ404",
                        path: root_path.to_string(),
                        line: root_line,
                        message: format!(
                            "worker job at {root_path}:{root_line} is not a closure literal, so \
                             its purity cannot be checked; inline the closure or annotate with \
                             `// parqp-lint: allow(PQ404)`"
                        ),
                    });
                }
                roots.push(RootInfo {
                    path: root_path.to_string(),
                    line: root_line,
                    crate_name: m.input.crate_name.to_string(),
                    closure: false,
                    reachable_fns: 0,
                });
                continue;
            }

            // Scan the region in the enclosing fn's context.
            let encl = m.owners[li].map(|local| &m.items[local]);
            let ctx = ResolveCtx {
                crate_name: m.input.crate_name,
                file_idx,
                owner: encl.and_then(|it| it.owner.as_deref()),
                params: encl.map(|it| it.params.as_slice()).unwrap_or(&[]),
                is_test: false,
            };
            let mut frontier: Vec<(usize, usize)> = Vec::new(); // (call line, target)
            let mut reported_kind = [false; 3];
            for l in region {
                let direct = first_direct_effect(&l.code);
                for eff in EFFECTS {
                    if let Some(what) = &direct[eff.idx()] {
                        if !reported_kind[eff.idx()] {
                            reported_kind[eff.idx()] = true;
                            diagnostics.push(Diagnostic {
                                rule: eff.rule(),
                                path: root_path.to_string(),
                                line: root_line,
                                message: format!(
                                    "worker closure at {root_path}:{root_line} {} directly: {} at \
                                     {root_path}:{}",
                                    eff.describe(),
                                    what,
                                    l.number
                                ),
                            });
                        }
                    }
                }
                for call in callgraph::calls_in_line(&l.code) {
                    if is_root_call(&call.callee) {
                        continue;
                    }
                    if is_effect_token_call(&call.callee) {
                        continue; // accounted as a direct effect above
                    }
                    match index.resolve(&call.callee, &ctx) {
                        Resolution::Edges(t) => {
                            frontier.extend(t.into_iter().map(|t| (l.number, t)))
                        }
                        Resolution::Pure => {}
                        Resolution::Unresolved { reason } => {
                            let key = (root_path.to_string(), l.number, call.callee.display());
                            if reported_unresolved.insert(key) {
                                diagnostics.push(Diagnostic {
                                    rule: "PQ404",
                                    path: root_path.to_string(),
                                    line: l.number,
                                    message: format!(
                                        "unresolved call {} in worker closure (root at \
                                         {root_path}:{root_line}): {reason}; resolve it or \
                                         annotate with `// parqp-lint: allow(PQ404)`",
                                        call.callee.display()
                                    ),
                                });
                            }
                        }
                    }
                }
            }

            // BFS over resolved edges: effects via summaries, PQ404 for
            // unresolved calls inside reachable bodies.
            let mut reachable: BTreeSet<usize> = BTreeSet::new();
            let mut queue: VecDeque<(usize, usize)> = frontier.iter().copied().collect();
            let mut entry: BTreeMap<usize, usize> = BTreeMap::new(); // target -> entry call line
            while let Some((call_line, t)) = queue.pop_front() {
                if !reachable.insert(t) {
                    continue;
                }
                entry.insert(t, call_line);
                for eff in EFFECTS {
                    if reported_kind[eff.idx()] {
                        continue;
                    }
                    if summaries[t].effects[eff.idx()].is_some() {
                        reported_kind[eff.idx()] = true;
                        let (chain, site) = effect_chain(&index, &summaries, files, t, eff);
                        diagnostics.push(Diagnostic {
                            rule: eff.rule(),
                            path: root_path.to_string(),
                            line: root_line,
                            message: format!(
                                "worker closure at {root_path}:{root_line} {} — reaches {site} \
                                 via {chain} (first call at {root_path}:{call_line})",
                                eff.describe()
                            ),
                        });
                    }
                }
                for (line, dl, reason) in &summaries[t].unresolved {
                    let (tf, ti) = (index.items[t].0, &index.items[t].1);
                    let tpath = files[tf].path;
                    let key = (tpath.to_string(), *line, dl.clone());
                    if reported_unresolved.insert(key) {
                        diagnostics.push(Diagnostic {
                            rule: "PQ404",
                            path: tpath.to_string(),
                            line: *line,
                            message: format!(
                                "unresolved call {dl} in worker-reachable fn `{}` (root at \
                                 {root_path}:{root_line}): {reason}; resolve it or annotate \
                                 with `// parqp-lint: allow(PQ404)`",
                                ti.display()
                            ),
                        });
                    }
                }
                for (line, targets) in &summaries[t].edges {
                    for &next in targets {
                        if !reachable.contains(&next) {
                            queue.push_back((*line, next));
                        }
                    }
                }
            }

            roots.push(RootInfo {
                path: root_path.to_string(),
                line: root_line,
                crate_name: m.input.crate_name.to_string(),
                closure: true,
                reachable_fns: reachable.len(),
            });
        }
    }

    EffectReport { diagnostics, roots }
}

/// Reconstruct the propagation chain from item `start` to the concrete
/// effect site: "`a::b` ({path}:{line}) → `c` …" plus the final site
/// description.
fn effect_chain(
    index: &Index,
    summaries: &[Summary],
    files: &[FileInput],
    start: usize,
    eff: Effect,
) -> (String, String) {
    let mut parts = Vec::new();
    let mut cur = start;
    let mut seen = BTreeSet::new();
    loop {
        let (file_idx, item) = &index.items[cur];
        let path = files[*file_idx].path;
        if !seen.insert(cur) {
            parts.push(format!("`{}` ({path})", item.display()));
            return (parts.join(" → "), "a cyclic effect summary".to_string());
        }
        match &summaries[cur].effects[eff.idx()] {
            Some(Exemplar::Direct { line, what }) => {
                parts.push(format!("`{}` ({path})", item.display()));
                return (parts.join(" → "), format!("{what} at {path}:{line}"));
            }
            Some(Exemplar::Via { line, callee }) => {
                // Show the call site that carries the effect to the next hop.
                parts.push(format!("`{}` ({path}:{line})", item.display()));
                cur = *callee;
            }
            None => {
                parts.push(format!("`{}` ({path})", item.display()));
                return (parts.join(" → "), "an inferred effect".to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::sanitize;

    fn run(srcs: &[(&str, &str, &str)]) -> EffectReport {
        let sanitized: Vec<SourceFile> = srcs.iter().map(|(_, _, s)| sanitize(s)).collect();
        let inputs: Vec<FileInput> = srcs
            .iter()
            .zip(&sanitized)
            .map(|((krate, path, _), file)| FileInput {
                crate_name: krate,
                path,
                file,
            })
            .collect();
        analyze(&inputs)
    }

    #[test]
    fn direct_trace_emit_in_closure_is_pq401() {
        let src = "fn go(cluster: &Cluster) {\n    cluster.map(items, |s, v| {\n        trace::emit(s);\n        v\n    });\n}\n";
        let rep = run(&[("join", "crates/join/src/x.rs", src)]);
        let d: Vec<_> = rep
            .diagnostics
            .iter()
            .filter(|d| d.rule == "PQ401")
            .collect();
        assert_eq!(d.len(), 1, "{:?}", rep.diagnostics);
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("trace::emit"));
    }

    #[test]
    fn effect_via_helper_shows_chain() {
        let src = "fn helper(x: u64) -> u64 {\n    metrics::emit(x);\n    x\n}\nfn go(cluster: &Cluster) {\n    cluster.map(items, |_, v| helper(v));\n}\n";
        let rep = run(&[("join", "crates/join/src/x.rs", src)]);
        let d: Vec<_> = rep
            .diagnostics
            .iter()
            .filter(|d| d.rule == "PQ401")
            .collect();
        assert_eq!(d.len(), 1, "{:?}", rep.diagnostics);
        assert!(d[0].message.contains("`helper`"), "{}", d[0].message);
        assert!(d[0].message.contains("metrics::emit"), "{}", d[0].message);
    }

    #[test]
    fn refcell_capture_is_pq402() {
        let src = "fn go(cluster: &Cluster) {\n    let shared = std::cell::RefCell::new(0);\n    cluster.map(items, |_, v| {\n        *shared.borrow_mut() += 1;\n        v\n    });\n}\n";
        let rep = run(&[("join", "crates/join/src/x.rs", src)]);
        assert!(rep.diagnostics.iter().any(|d| d.rule == "PQ402"));
    }

    #[test]
    fn unresolved_param_call_is_pq404() {
        let src = "fn go(cluster: &Cluster, key: impl Fn(u64) -> u64) {\n    cluster.map(items, |_, v| key(v));\n}\n";
        let rep = run(&[("sort", "crates/sort/src/x.rs", src)]);
        let d: Vec<_> = rep
            .diagnostics
            .iter()
            .filter(|d| d.rule == "PQ404")
            .collect();
        assert_eq!(d.len(), 1, "{:?}", rep.diagnostics);
        assert!(d[0].message.contains("higher-order"));
    }

    #[test]
    fn pure_closure_is_clean_and_root_is_recorded() {
        let src = "fn double(v: u64) -> u64 {\n    v * 2\n}\nfn go(cluster: &Cluster) {\n    cluster.map(items, |_, v| double(v));\n}\n";
        let rep = run(&[("join", "crates/join/src/x.rs", src)]);
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
        assert_eq!(rep.roots.len(), 1);
        assert_eq!(rep.roots[0].reachable_fns, 1);
    }

    #[test]
    fn non_closure_job_is_pq404_outside_plumbing_crates() {
        let src = "fn go(pool: &WorkerPool, f: fn(usize) -> u64) {\n    pool.map(items, f);\n}\n";
        let rep = run(&[("join", "crates/join/src/x.rs", src)]);
        assert!(rep.diagnostics.iter().any(|d| d.rule == "PQ404"));
        let rep = run(&[("mpc", "crates/mpc/src/x.rs", src)]);
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
    }

    #[test]
    fn test_code_roots_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(cluster: &Cluster) {\n        cluster.map(items, |_, v| trace::emit(v));\n    }\n}\n";
        let rep = run(&[("join", "crates/join/src/x.rs", src)]);
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
    }

    #[test]
    fn cross_file_propagation() {
        let a = "pub fn log_it(x: u64) {\n    parqp_trace::emit(x);\n}\n";
        let b = "fn go(cluster: &Cluster) {\n    cluster.map(items, |_, v| {\n        crate::log_it(v);\n        v\n    });\n}\n";
        let rep = run(&[
            ("join", "crates/join/src/a.rs", a),
            ("join", "crates/join/src/b.rs", b),
        ]);
        assert!(
            rep.diagnostics.iter().any(|d| d.rule == "PQ401"),
            "{:?}",
            rep.diagnostics
        );
    }

    #[test]
    fn thread_local_access_is_pq403() {
        let src = "fn go(cluster: &Cluster) {\n    cluster.map(items, |_, v| {\n        SLOT.with(|s| s.set(v));\n        v\n    });\n}\n";
        let rep = run(&[("join", "crates/join/src/x.rs", src)]);
        assert!(
            rep.diagnostics.iter().any(|d| d.rule == "PQ403"),
            "{:?}",
            rep.diagnostics
        );
    }
}
