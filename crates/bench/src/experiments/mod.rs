//! One module per experiment; see `DESIGN.md` for the experiment index.
//!
//! Every experiment is deterministic (fixed seeds), prints "paper
//! formula" columns next to measured values, and is sized to run in
//! seconds on a laptop in release mode.

use crate::Table;

pub mod ablations;
pub mod e01_regimes;
pub mod e02_skew_threshold;
pub mod e03_cartesian;
pub mod e04_skew_join;
pub mod e05_triangle;
pub mod e06_unequal;
pub mod e07_speedup;
pub mod e08_skewhc;
pub mod e09_rounds;
pub mod e10_chain;
pub mod e11_crossover;
pub mod e12_gym;
pub mod e13_sort;
pub mod e14_matmul;
pub mod subgraph_engines;

/// All experiment ids in order.
pub const ALL: [&str; 16] = [
    "e01", "e02", "e03", "e04", "e05", "e06", "e07", "e08", "e09", "e10", "e11", "e12", "e13",
    "e14", "abl", "sub",
];

/// Run one experiment by id: `"e01"` … `"e14"`, `"abl"` (implementation
/// ablations) or `"sub"` (subgraph engines).
///
/// # Panics
/// Panics on an unknown id.
pub fn run(id: &str) -> Vec<Table> {
    match id {
        "e01" => e01_regimes::run(),
        "e02" => e02_skew_threshold::run(),
        "e03" => e03_cartesian::run(),
        "e04" => e04_skew_join::run(),
        "e05" => e05_triangle::run(),
        "e06" => e06_unequal::run(),
        "e07" => e07_speedup::run(),
        "e08" => e08_skewhc::run(),
        "e09" => e09_rounds::run(),
        "e10" => e10_chain::run(),
        "e11" => e11_crossover::run(),
        "e12" => e12_gym::run(),
        "e13" => e13_sort::run(),
        "e14" => e14_matmul::run(),
        "abl" => ablations::run(),
        "sub" => subgraph_engines::run(),
        other => panic!("unknown experiment id {other:?} (expected e01..e14, abl or sub)"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn ids_resolve() {
        // Smoke-run the cheapest experiment through the dispatcher.
        let tables = super::run("e06");
        assert!(!tables.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        super::run("e99");
    }
}
