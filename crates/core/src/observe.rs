//! Named, deterministic trace experiments for the `parqp trace`
//! subcommand and the CI smoke test.
//!
//! Each experiment builds a synthetic input from the seed, runs one of
//! the tutorial's algorithms under an installed [`parqp_trace::Recorder`]
//! and returns the captured event stream. Everything downstream of the
//! `(name, servers, seed)` triple is deterministic — running the same
//! experiment twice yields byte-identical JSONL exports, which the
//! `trace_invariants` integration test asserts.

use parqp_data::generate;
use parqp_query::Query;
use parqp_trace::Recorder;

/// A named experiment: a deterministic algorithm run to trace.
pub struct Experiment {
    /// CLI name (`--experiment <name>`).
    pub name: &'static str,
    /// One-line description shown by `parqp trace` without arguments.
    pub description: &'static str,
}

/// Every experiment `parqp trace` knows about.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "triangle-hypercube",
        description: "HyperCube triangle join over a random symmetric graph",
    },
    Experiment {
        name: "twoway-hash",
        description: "two-way hash join of uniform relations",
    },
    Experiment {
        name: "twoway-skew",
        description: "skew join of a zipf-skewed relation against a uniform one",
    },
    Experiment {
        name: "chain-binary",
        description: "3-atom chain query via the binary join plan (multi-round)",
    },
    Experiment {
        name: "skewhc-triangle",
        description: "SkewHC triangle join over zipf-skewed edges",
    },
    Experiment {
        name: "psrs",
        description: "2-round parallel sorting by regular sampling",
    },
    Experiment {
        name: "multiround-sort",
        description: "splitter-tree distribution sort, fan-out 4",
    },
    Experiment {
        name: "matmul-square",
        description: "multi-round square-block matrix multiplication",
    },
];

/// Run the named experiment on `servers` simulated servers, capturing
/// its trace. Returns `Err` for unknown names (with the known ones
/// listed).
pub fn run_experiment(name: &str, servers: usize, seed: u64) -> Result<Recorder, String> {
    assert!(servers >= 1, "need at least one server");
    let run: fn(usize, u64) = match name {
        "triangle-hypercube" => |p, s| {
            let q = Query::triangle();
            let g = generate::random_symmetric_graph(120, 900, s);
            parqp_join::multiway::hypercube(&q, &[g.clone(), g.clone(), g], p, s);
        },
        "twoway-hash" => |p, s| {
            let r = generate::uniform(2, 4000, 500, s);
            let t = generate::uniform(2, 4000, 500, s.wrapping_add(1));
            parqp_join::twoway::hash_join(&r, 1, &t, 0, p, s);
        },
        "twoway-skew" => |p, s| {
            let r = generate::zipf_pairs(4000, 1000, 1.2, 0, s);
            let t = generate::uniform(2, 4000, 1000, s.wrapping_add(1));
            parqp_join::twoway::skew_join(&r, 0, &t, 0, p, s);
        },
        "chain-binary" => |p, s| {
            let q = Query::chain(3);
            let rels: Vec<_> = (0..3)
                .map(|i| generate::uniform(2, 800, 120, s.wrapping_add(i)))
                .collect();
            parqp_join::plans::binary_join_plan(&q, &rels, p, s, None);
        },
        "skewhc-triangle" => |p, s| {
            let q = Query::triangle();
            let rels: Vec<_> = (0..3)
                .map(|i| generate::zipf_pairs(1500, 400, 1.1, 0, s.wrapping_add(i)))
                .collect();
            parqp_join::skewhc::skewhc(&q, &rels, p, s);
        },
        "psrs" => |p, s| {
            let keys = sort_input(20_000, s);
            let mut cluster = parqp_mpc::Cluster::new(p);
            let local = cluster.scatter(keys);
            parqp_sort::psrs(&mut cluster, local);
        },
        "multiround-sort" => |p, s| {
            let keys = sort_input(20_000, s);
            let mut cluster = parqp_mpc::Cluster::new(p);
            let local = cluster.scatter(keys);
            parqp_sort::multiround_sort(&mut cluster, local, 4);
        },
        "matmul-square" => |p, s| {
            let a = parqp_matmul::Matrix::random(24, s);
            let b = parqp_matmul::Matrix::random(24, s.wrapping_add(1));
            parqp_matmul::square_block(&a, &b, 4, p);
        },
        other => {
            let known: Vec<&str> = EXPERIMENTS.iter().map(|e| e.name).collect();
            return Err(format!(
                "unknown experiment {other:?}; known: {}",
                known.join(", ")
            ));
        }
    };
    let (recorder, ()) = Recorder::capture(|| run(servers, seed));
    Ok(recorder)
}

/// Deterministic sort input: `n` keys drawn through the data
/// generator's seeded hashing (no global RNG involved).
fn sort_input(n: usize, seed: u64) -> Vec<u64> {
    let rel = generate::uniform(1, n, 1 << 32, seed);
    rel.iter().map(|row| row[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_trace::analyze;

    #[test]
    fn every_listed_experiment_runs_and_traces() {
        for e in EXPERIMENTS {
            let rec = run_experiment(e.name, 8, 7).expect("known experiment");
            let totals = analyze::totals(&rec);
            assert!(totals.rounds >= 1, "{}: no rounds traced", e.name);
            assert!(totals.tuples > 0, "{}: no tuples traced", e.name);
        }
    }

    #[test]
    fn unknown_experiment_lists_known_names() {
        let err = run_experiment("nope", 4, 1).expect_err("unknown name");
        assert!(err.contains("triangle-hypercube"));
    }

    #[test]
    fn same_seed_same_trace() {
        let a = run_experiment("twoway-hash", 8, 3).expect("runs");
        let b = run_experiment("twoway-hash", 8, 3).expect("runs");
        assert_eq!(
            a.events().collect::<Vec<_>>(),
            b.events().collect::<Vec<_>>()
        );
    }
}
