//! # parqp-metrics — bound-adherence metrics for the MPC simulator
//!
//! The tutorial states every result as a closed-form bound — `L =
//! IN/p^{1/τ*}` per round for skew-free inputs, `IN/p^{1/ψ*}` under
//! skew, AGM for output sizes — yet `parqp-trace` only records *raw*
//! per-round loads. This crate closes the gap: a [`MetricsRegistry`]
//! of counters, gauges, and power-of-two histograms is fed by the very
//! same [`TraceEvent`](parqp_trace::TraceEvent) stream the simulator
//! already emits, and each algorithm *announces* its predicted load
//! through the [`BoundProvider`] trait so the registry can report
//! `measured_L / predicted_L` ratios, round counts vs. paper rounds,
//! and skew ratios per experiment.
//!
//! Everything here is deterministic: no clocks, no randomness, no
//! iteration over unordered maps (PQ001–PQ003 clean). Wall-clock
//! timing lives in the testkit bench harness, the one sanctioned
//! `Instant::now` site, and only ever decorates exported JSON — it
//! never feeds a metric the CI gate compares exactly.
//!
//! ## Layering
//!
//! Mirrors the `parqp-trace`/`parqp-faults` thread-local registry
//! pattern: [`install`] puts a registry in a thread-local slot,
//! [`MetricsGuard`] restores the previous one on drop, and
//! [`capture`] wraps a closure and hands back the filled registry.
//! Only `parqp-mpc` forwards communication events into the registry
//! (via [`emit`] — lint rule PQ107, the metrics twin of PQ105);
//! algorithm crates only [`announce`] bounds, and consumers read the
//! finished registry.
//!
//! ## Modules
//!
//! * [`bound`] — the [`BoundProvider`] contract, [`PaperBound`], and
//!   [`LoadUnit`];
//! * [`registry`] — the [`MetricsRegistry`] and its histogram;
//! * [`runtime`] — the thread-local install/capture machinery.

pub mod bound;
pub mod registry;
pub mod runtime;

pub use bound::{BoundProvider, LoadUnit, PaperBound};
pub use registry::{BoundRecord, MetricsRegistry};
pub use runtime::{announce, capture, emit, emit_io, install, is_enabled, MetricsGuard};
