//! Adversarial and pathological inputs: every two-way algorithm must
//! stay correct (and the skew-resilient ones bounded) on the inputs that
//! break naive implementations — all-equal keys, sequential keys,
//! bit-pattern keys that stress weak hash functions, empty sides,
//! singleton relations, and self-joins.

use parqp_data::{generate, Relation};
use parqp_join::common::twoway_oracle;
use parqp_join::twoway;

fn pathological_inputs() -> Vec<(&'static str, Relation)> {
    let sequential = Relation::from_rows(2, (0..500u64).map(|i| [i, i]).collect::<Vec<_>>());
    let powers_of_two =
        Relation::from_rows(2, (0..63u64).map(|i| [1u64 << i, i]).collect::<Vec<_>>());
    let high_bits = Relation::from_rows(2, (0..400u64).map(|i| [i << 48, i]).collect::<Vec<_>>());
    let all_equal = generate::constant_key_pairs(400, u64::MAX, 0);
    let singleton = Relation::from_rows(2, [[7, 7]]);
    let two_values = Relation::from_rows(2, (0..300u64).map(|i| [i % 2, i]).collect::<Vec<_>>());
    vec![
        ("sequential", sequential),
        ("powers_of_two", powers_of_two),
        ("high_bits", high_bits),
        ("all_equal_umax", all_equal),
        ("singleton", singleton),
        ("two_values", two_values),
    ]
}

#[test]
fn all_twoway_algorithms_survive_pathological_inputs() {
    let inputs = pathological_inputs();
    for (rn, r) in &inputs {
        for (sn, s) in &inputs {
            let expect = twoway_oracle(r, 0, s, 0).canonical();
            for p in [1usize, 7, 16] {
                let runs = [
                    ("hash", twoway::hash_join(r, 0, s, 0, p, 3)),
                    ("skew", twoway::skew_join(r, 0, s, 0, p, 3)),
                    ("sort", twoway::sort_merge_join(r, 0, s, 0, p, 3)),
                ];
                for (alg, run) in runs {
                    assert_eq!(
                        run.gathered().canonical(),
                        expect,
                        "{alg} wrong on {rn} ⋈ {sn} at p = {p}"
                    );
                }
            }
        }
    }
}

#[test]
fn self_join_consistency() {
    // R ⋈ R on the same column: every tuple pairs with every same-key
    // tuple, including itself.
    let r = generate::uniform_degree_pairs(300, 3, 0, 1 << 20, 5);
    let expect = twoway_oracle(&r, 0, &r, 0).canonical();
    for run in [
        twoway::hash_join(&r, 0, &r, 0, 8, 9),
        twoway::skew_join(&r, 0, &r, 0, 8, 9),
        twoway::sort_merge_join(&r, 0, &r, 0, 8, 9),
    ] {
        assert_eq!(run.gathered().canonical(), expect);
    }
}

#[test]
fn skew_resilient_loads_bounded_on_two_heavy_values() {
    // Two maximally heavy values: the skew join must give each its own
    // grid; load stays near 2√(OUT/p), not IN.
    let n = 2000;
    let mut r = generate::constant_key_pairs(n / 2, 1, 0);
    r.extend_from(&generate::constant_key_pairs(n / 2, 2, 0));
    let mut s = generate::constant_key_pairs(n / 2, 1, 0);
    s.extend_from(&generate::constant_key_pairs(n / 2, 2, 0));
    let p = 64;
    let run = twoway::skew_join(&r, 0, &s, 0, p, 7);
    let out = twoway::output_size(&r, 0, &s, 0);
    assert_eq!(out, 2 * (n as u64 / 2) * (n as u64 / 2));
    let bound = 2.0 * (out as f64 / p as f64).sqrt() + (2 * n) as f64 / p as f64;
    let l = run.report.max_load_tuples() as f64;
    assert!(l < 3.0 * bound, "L = {l} vs bound {bound}");
}

#[test]
fn weak_hash_stress_distinct_loads_stay_reasonable() {
    // Keys differing only in high bits stress multiplicative hashers; the
    // hash join's load must stay near IN/p, not collapse onto one server.
    let n = 8192u64;
    let r = Relation::from_rows(2, (0..n).map(|i| [i << 50, i]).collect::<Vec<_>>());
    let s = Relation::from_rows(2, (0..n).map(|i| [i << 50, i + 1]).collect::<Vec<_>>());
    let p = 16;
    let run = twoway::hash_join(&r, 0, &s, 0, p, 11);
    let ideal = (2 * n) as f64 / p as f64;
    let l = run.report.max_load_tuples() as f64;
    assert!(
        l < 1.5 * ideal,
        "high-bit keys skewed the hash: L = {l} vs {ideal}"
    );
}

#[test]
fn aggregation_on_pathological_groups() {
    use parqp_join::aggregate::*;
    for (name, rel) in pathological_inputs() {
        let expect = group_sum_oracle(&rel, 0, 1);
        for run in [
            hash_group_sum(&rel, 0, 1, 8, 3),
            combiner_group_sum(&rel, 0, 1, 8, 3),
            tree_group_sum(&rel, 0, 1, 8, 3),
        ] {
            let mut got = run.gathered();
            got.sort();
            assert_eq!(got, expect, "{name}");
        }
    }
}
