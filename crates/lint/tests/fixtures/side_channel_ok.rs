//! Fixture: layering-clean accounting — combinators only, no literals.

use parqp_mpc::LoadReport;

pub fn silent(p: usize) -> LoadReport {
    LoadReport::empty(p)
}

pub fn sat_out(p: usize) -> LoadReport {
    LoadReport::idle(p, 1)
}

pub fn combined(a: &LoadReport, b: &LoadReport) -> LoadReport {
    LoadReport::sequential(&[a.clone(), b.clone()])
}
