//! Guard: the workspace must stay buildable with zero network access.
//!
//! Every dependency in every manifest must resolve inside the repo —
//! either `path = "…"` directly, or `workspace = true` pointing at a
//! `[workspace.dependencies]` entry that is itself a path dependency —
//! and the crates the testkit replaced (`rand`, `proptest`,
//! `criterion`) must never come back. The checks themselves live in
//! `parqp-lint` (rules `PQ301`/`PQ302`, see `crates/lint/src/manifest.rs`)
//! so this guard, the `cargo run -p parqp-lint` CI step, and the lint
//! crate's own tests share one implementation; this test keeps the
//! historical name and the testkit's fast `cargo test -p parqp-testkit`
//! feedback loop.

use parqp_lint::{check_offline, member_dirs, workspace_root};

#[test]
fn no_registry_or_banned_dependencies_anywhere() {
    let root = workspace_root();
    let findings = check_offline(&root).expect("manifests readable");
    assert!(
        findings.is_empty(),
        "registry/git/banned dependencies would break the offline build:\n  {}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n  ")
    );
}

#[test]
fn guard_actually_walked_the_workspace() {
    // If member discovery drifts (crates/ moved, glob broken) the guard
    // above would pass vacuously; pin the member count floor instead.
    let members = member_dirs(&workspace_root()).expect("crates/ directory");
    assert!(
        members.len() >= 9,
        "expected at least 9 member crates, found {}: discovery drifted?",
        members.len()
    );
}
