//! Paged relation scans: the `parqp-data` face of `parqp-store`.
//!
//! A [`PagedRelation`] copies a [`Relation`]'s rows into fixed-size
//! pages (rows never straddle a page boundary) and iterates them back
//! **byte-identically, in the original order**, charging the owning
//! server's buffer pool one logical read per row as each page is
//! entered. With no store runtime installed the whole layer is inert:
//! page IDs come from a local counter and pool touches are no-ops, so
//! paged and unpaged scans are observationally identical except for the
//! IO ledger — the property the `store_differential` suite pins.
//!
//! This module also re-exports the store runtime surface (install,
//! capture, cursors, regions) so the algorithm crates — join, sort,
//! matmul, core — reach paging exclusively through `parqp_data::paged`
//! and never grow a direct `parqp-store` dependency (the lint DAG keeps
//! `store` reachable only from `data` and `mpc`).

use crate::relation::{Relation, Value};
use parqp_store::{self as store, MemStore, Page, PageId, PageStore};

pub use parqp_store::{
    capture, install, io_report, is_enabled, IoCursor, IoRegion, IoStats, StoreConfig, StoreGuard,
    DEFAULT_PAGE_SIZE, DEFAULT_POOL_PAGES,
};

/// A relation materialized as fixed-size pages owned by one server.
#[derive(Debug, Clone)]
pub struct PagedRelation {
    server: usize,
    arity: usize,
    len: usize,
    ids: Vec<PageId>,
    store: MemStore,
}

impl PagedRelation {
    /// Page `rel`'s rows for `server`, honoring the installed page size
    /// (or [`DEFAULT_PAGE_SIZE`] when nothing is installed). Each page
    /// holds `max(1, page_size / arity)` whole rows.
    pub fn build(server: usize, rel: &Relation) -> Self {
        let arity = rel.arity().max(1);
        let page_size = store::config().map_or(DEFAULT_PAGE_SIZE, |c| c.page_size);
        let rows_per_page = (page_size / arity).max(1);
        let num_pages = rel.len().div_ceil(rows_per_page) as u64;
        let base = if num_pages > 0 {
            store::alloc_pages(num_pages).unwrap_or(0)
        } else {
            0
        };
        let mut pages = MemStore::new();
        let mut ids = Vec::with_capacity(num_pages as usize);
        for (i, rows) in rel.raw().chunks(rows_per_page * arity).enumerate() {
            let mut page = Page::new(rows_per_page * arity);
            for row in rows.chunks_exact(arity) {
                let fit = page.push_row(row);
                debug_assert!(fit, "whole rows always fit a row-aligned page");
            }
            let id = base + i as u64;
            pages.insert(id, page);
            ids.push(id);
        }
        Self {
            server,
            arity: rel.arity(),
            len: rel.len(),
            ids,
            store: pages,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of pages backing the relation.
    pub fn num_pages(&self) -> usize {
        self.store.num_pages()
    }

    /// Scan the rows in original order, charging `server`'s pool one
    /// logical read per row (billed page-at-a-time on page entry).
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> + '_ {
        let arity = self.arity.max(1);
        self.ids.iter().flat_map(move |&id| {
            let page = self
                .store
                .page(id)
                .expect("paged relation owns every page it indexes");
            store::touch_page(self.server, id, (page.len() / arity) as u64);
            page.words().chunks_exact(arity)
        })
    }

    /// Rebuild the flat relation (test helper for round-trip checks).
    pub fn to_relation(&self) -> Relation {
        let mut rel = Relation::with_capacity(self.arity, self.len);
        for row in self.iter() {
            rel.push(row);
        }
        rel
    }
}

/// The scan every routing loop runs on: paged (through `server`'s
/// buffer pool, charging the IO ledger) when a store runtime is
/// installed, a plain flat scan otherwise. Rows come back
/// byte-identical in either mode, so algorithms can adopt paging
/// without perturbing outputs, ledgers or traces.
#[derive(Debug)]
pub enum RouteScan<'a> {
    /// No store installed: scan the relation's flat row vector.
    Flat(&'a Relation),
    /// Store installed: scan a freshly paged copy owned by `server`.
    Paged(PagedRelation),
}

impl<'a> RouteScan<'a> {
    /// A scan of `part` on `server`'s behalf, paged iff a store
    /// runtime is installed.
    pub fn new(server: usize, part: &'a Relation) -> Self {
        if is_enabled() {
            RouteScan::Paged(PagedRelation::build(server, part))
        } else {
            RouteScan::Flat(part)
        }
    }

    /// The rows, in the relation's original order.
    pub fn iter(&self) -> ScanIter<'_> {
        match self {
            RouteScan::Flat(rel) => ScanIter {
                inner: ScanInner::Flat(rel.raw().chunks_exact(rel.arity().max(1))),
            },
            RouteScan::Paged(paged) => ScanIter {
                inner: ScanInner::Paged(Box::new(paged.iter())),
            },
        }
    }
}

/// Iterator over a [`RouteScan`]'s rows.
pub struct ScanIter<'a> {
    inner: ScanInner<'a>,
}

enum ScanInner<'a> {
    Flat(std::slice::ChunksExact<'a, Value>),
    Paged(Box<dyn Iterator<Item = &'a [Value]> + 'a>),
}

impl<'a> Iterator for ScanIter<'a> {
    type Item = &'a [Value];

    fn next(&mut self) -> Option<&'a [Value]> {
        match &mut self.inner {
            ScanInner::Flat(it) => it.next(),
            ScanInner::Paged(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn paged_scan_is_byte_identical_to_flat_scan() {
        let rel = generate::uniform(3, 500, 64, 7);
        let paged = PagedRelation::build(0, &rel);
        assert_eq!(paged.len(), rel.len());
        let flat: Vec<&[Value]> = rel.iter().collect();
        let via_pages: Vec<&[Value]> = paged.iter().collect();
        assert_eq!(flat, via_pages, "same rows, same order");
        assert_eq!(paged.to_relation().raw(), rel.raw());
    }

    #[test]
    fn scan_charges_one_read_per_row() {
        let rel = generate::uniform(2, 100, 32, 9);
        let (totals, pages) = capture(
            StoreConfig {
                page_size: 16, // 8 two-column rows per page
                pool_pages: 4,
            },
            || {
                let paged = PagedRelation::build(3, &rel);
                let rows = paged.iter().count();
                assert_eq!(rows, 100);
                paged.num_pages()
            },
        );
        assert_eq!(pages, 13, "100 rows at 8 rows/page");
        assert_eq!(totals[3].reads, 100, "one logical read per row");
        assert_eq!(totals[3].misses, 13, "one miss per cold page");
    }

    #[test]
    fn small_pool_forces_evictions_on_rescan() {
        let rel = generate::uniform(2, 64, 16, 5);
        let (totals, ()) = capture(
            StoreConfig {
                page_size: 8,
                pool_pages: 2,
            },
            || {
                let paged = PagedRelation::build(0, &rel);
                for _ in 0..2 {
                    assert_eq!(paged.iter().count(), 64);
                }
            },
        );
        assert_eq!(totals[0].reads, 128);
        assert!(
            totals[0].evictions > 0,
            "16 pages cycling through a 2-page pool must evict"
        );
        assert_eq!(
            totals[0].misses, 32,
            "every page entry misses when thrashing"
        );
    }

    #[test]
    fn route_scan_switches_on_the_installed_runtime() {
        let rel = generate::uniform(2, 40, 16, 11);
        let flat: Vec<Vec<Value>> = rel.iter().map(<[Value]>::to_vec).collect();

        let unpaged = RouteScan::new(0, &rel);
        assert!(matches!(unpaged, RouteScan::Flat(_)));
        let rows: Vec<Vec<Value>> = unpaged.iter().map(<[Value]>::to_vec).collect();
        assert_eq!(rows, flat);

        let (totals, rows) = capture(StoreConfig::default(), || {
            let scan = RouteScan::new(2, &rel);
            assert!(matches!(scan, RouteScan::Paged(_)));
            scan.iter().map(<[Value]>::to_vec).collect::<Vec<_>>()
        });
        assert_eq!(rows, flat, "paged and flat scans agree byte-for-byte");
        assert_eq!(totals[2].reads, 40);
    }

    #[test]
    fn disabled_runtime_scans_without_accounting() {
        assert!(!is_enabled());
        let rel = generate::uniform(2, 50, 16, 3);
        let paged = PagedRelation::build(1, &rel);
        assert_eq!(paged.to_relation().raw(), rel.raw());
        assert!(io_report().is_empty());
    }

    #[test]
    fn empty_and_unit_relations_page_cleanly() {
        let empty = Relation::new(2);
        let paged = PagedRelation::build(0, &empty);
        assert!(paged.is_empty());
        assert_eq!(paged.num_pages(), 0);
        assert_eq!(paged.iter().count(), 0);

        let mut one = Relation::new(4);
        one.push(&[9, 8, 7, 6]);
        let (totals, ()) = capture(
            StoreConfig {
                page_size: 1, // narrower than a row: one row per page, whole
                pool_pages: 1,
            },
            || {
                let paged = PagedRelation::build(0, &one);
                assert_eq!(paged.num_pages(), 1);
                assert_eq!(paged.iter().next(), Some(&[9, 8, 7, 6][..]));
            },
        );
        assert_eq!((totals[0].reads, totals[0].misses), (1, 1));
    }
}
