//! # parqp-query — conjunctive queries, decompositions and serial oracles
//!
//! The query-language layer of the reproduction:
//!
//! * [`query`] — full conjunctive queries (natural joins)
//!   `Q(x₁…x_k) = S₁(x̄₁) ⋈ … ⋈ S_l(x̄_l)` with named constructors for
//!   every shape the tutorial uses (triangle, chains, stars, cycles,
//!   the semijoin pair `R(x) ⋈ S(x,y) ⋈ T(y)`);
//! * [`ghd`] — generalized hypertree decompositions: the GYO ear-removal
//!   test building width-1 join trees for acyclic queries (slide 64), and
//!   the chain-query constructions trading width for depth (slide 95);
//! * [`mod@residual`] — residual queries `Q_x` for heavy/light decompositions
//!   and the skew exponent ψ\* (slide 47);
//! * [`oracle`] — serial reference evaluation: a binding-table hash join
//!   (the ground truth every MPC algorithm is tested against) and the
//!   serial Yannakakis algorithm (slides 64–77);
//! * [`parser`] — a Datalog-style surface syntax
//!   (`Q(x,y,z) :- R(x,y), S(y,z), T(z,x)`);
//! * [`wcoj`] — a worst-case-optimal serial Generic Join (the `O(AGM)`
//!   engine behind the slide 55 bound and the slide 97 BiGJoin family).

pub mod ghd;
pub mod oracle;
pub mod parser;
pub mod query;
pub mod residual;
pub mod wcoj;

pub use ghd::{Bag, Ghd};
pub use oracle::{evaluate, yannakakis_serial};
pub use parser::{parse_query, ParseError};
pub use query::{Atom, Query, Var};
pub use residual::{all_residuals, psi_star, residual, ResidualQuery};
pub use wcoj::{generic_join, generic_join_with_order};
