//! # parqp-bench — the experiment harness
//!
//! One module per experiment (`e01` … `e14`), each regenerating a table
//! or figure of the paper as plain text rows plus CSV-ready series. The
//! `tables` binary prints any subset:
//!
//! ```text
//! cargo run --release -p parqp-bench --bin tables            # everything
//! cargo run --release -p parqp-bench --bin tables -- e05 e08 # a subset
//! ```
//!
//! Criterion wall-clock benches live in `benches/` (one group per
//! experiment family); the *numbers the paper is about* — loads, rounds,
//! communication — come from this module, deterministically.

pub mod experiments;
pub mod table;

pub use table::Table;

/// Run one experiment with a trace recorder installed, returning its
/// tables plus the captured round-level event stream. The `tables`
/// binary uses this for `--trace <dir>`, persisting a
/// `<id>.trace.jsonl` next to each experiment's CSV output.
pub fn run_traced(id: &str) -> (Vec<Table>, parqp_trace::Recorder) {
    let (recorder, tables) = parqp_trace::Recorder::capture(|| experiments::run(id));
    (tables, recorder)
}

/// Fault-injection horizon for [`run_with_faults`]: logical rounds the
/// seeded plan spreads its faults over. Kept short so the schedule is
/// dense — bench experiments record few rounds per cluster, and faults
/// planned past the last recorded round never fire.
const FAULT_HORIZON: usize = 8;

/// Cluster size the seeded plan targets; faults scheduled on servers
/// outside a smaller cluster's range simply don't fire there.
const FAULT_SERVERS: usize = 64;

/// Faults per kind for [`run_with_faults`]: two of each over the short
/// horizon, so any experiment recording a handful of rounds at a
/// reasonable `p` fires at least once.
fn bench_fault_spec() -> parqp_faults::FaultSpec {
    parqp_faults::FaultSpec {
        crashes: 2,
        drops: 2,
        duplicates: 2,
        stragglers: 2,
        max_batch: 8,
    }
}

/// Run one experiment under a seeded fault plan *and* a trace recorder:
/// crashes, message drops/duplications, and stragglers fire at exact
/// logical rounds (see `parqp-faults`), recovery overhead is charged to
/// every `LoadReport` the experiment produces, and the returned trace
/// carries the `fault_injected`/`recovery_*` event stream. Outputs are
/// unchanged — injection is transparent to algorithms — so experiments'
/// own correctness asserts still hold under faults.
pub fn run_with_faults(
    id: &str,
    seed: u64,
) -> (Vec<Table>, parqp_faults::FaultLog, parqp_trace::Recorder) {
    let plan =
        parqp_faults::FaultPlan::random(seed, FAULT_SERVERS, FAULT_HORIZON, &bench_fault_spec());
    let (log, (recorder, tables)) =
        parqp_faults::capture(plan, parqp_faults::RecoveryStrategy::default(), || {
            parqp_trace::Recorder::capture(|| experiments::run(id))
        });
    (tables, log, recorder)
}

#[cfg(test)]
mod tests {
    #[test]
    fn run_traced_captures_rounds() {
        let (tables, rec) = super::run_traced("e06");
        assert!(!tables.is_empty());
        let totals = parqp_trace::analyze::totals(&rec);
        assert!(totals.rounds >= 1);
        assert!(totals.tuples > 0);
    }

    #[test]
    fn run_with_faults_charges_overhead_without_changing_tables() {
        let (clean, _) = super::run_traced("e06");
        let (tables, log, rec) = super::run_with_faults("e06", 7);
        let rendered: Vec<String> = tables.iter().map(super::Table::render).collect();
        let clean_rendered: Vec<String> = clean.iter().map(super::Table::render).collect();
        assert!(log.fired() >= 1, "seeded plan must fire on e06");
        assert!(
            rec.events()
                .any(|e| matches!(e, parqp_trace::TraceEvent::FaultInjected { .. })),
            "trace must carry fault events"
        );
        // e06's tables report loads measured per run; injection charges
        // recovery to the ledger, so at least the header rows match and
        // the tables parse — but outputs (and thus correctness asserts
        // inside the experiment) are untouched by construction.
        assert_eq!(rendered.len(), clean_rendered.len());
    }
}
