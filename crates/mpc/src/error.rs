//! Typed errors for the simulator's invariant violations.
//!
//! The panicking entry points (`Cluster::new`, `Exchange::send`,
//! `Grid::rank`, …) are the ergonomic surface algorithms use — a violated
//! invariant there is a bug in the calling algorithm, and aborting the
//! simulated run is the right default. Each of them is a thin wrapper
//! over a `try_*` sibling returning [`MpcError`], for callers (planners,
//! servers, fuzzers) that must survive malformed input instead of
//! panicking. Keeping the panic in exactly one place per invariant also
//! keeps the workspace's panic-surface ratchet (`parqp-lint` rule PQ201)
//! honest: `crates/mpc` has no `unwrap`/`expect` at all, and every
//! `panic!` routes through one of these variants.

/// An invariant violation reported by the MPC simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// A cluster or grid dimension was zero.
    EmptyTopology {
        /// What was being constructed (`"cluster"` or `"grid"`).
        what: &'static str,
    },
    /// A message was addressed to a server rank outside `0..p`.
    BadServer { dest: usize, p: usize },
    /// A coordinate vector had the wrong number of dimensions.
    BadArity { got: usize, expected: usize },
    /// A coordinate exceeded its dimension's size.
    BadCoordinate { coord: usize, dim_size: usize },
    /// A rank exceeded the grid size.
    BadRank { rank: usize, size: usize },
    /// A per-server compute closure panicked during
    /// [`Cluster::try_map`](crate::Cluster::try_map).
    WorkerPanic { server: usize, message: String },
}

impl std::fmt::Display for MpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpcError::EmptyTopology { what } => {
                write!(f, "a {what} needs at least one server in every dimension")
            }
            MpcError::BadServer { dest, p } => {
                write!(
                    f,
                    "destination server {dest} out of range for cluster of {p}"
                )
            }
            MpcError::BadArity { got, expected } => {
                write!(
                    f,
                    "coordinate arity mismatch: got {got}, grid has {expected} dimensions"
                )
            }
            MpcError::BadCoordinate { coord, dim_size } => {
                write!(
                    f,
                    "coordinate {coord} out of range for dimension of size {dim_size}"
                )
            }
            MpcError::BadRank { rank, size } => {
                write!(f, "rank {rank} out of range for grid of {size}")
            }
            MpcError::WorkerPanic { server, message } => {
                write!(f, "server {server} compute closure panicked: {message}")
            }
        }
    }
}

impl std::error::Error for MpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_numbers() {
        let e = MpcError::BadServer { dest: 9, p: 4 };
        assert_eq!(
            e.to_string(),
            "destination server 9 out of range for cluster of 4"
        );
        let e = MpcError::BadCoordinate {
            coord: 7,
            dim_size: 3,
        };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn is_std_error() {
        fn takes(_: &dyn std::error::Error) {}
        takes(&MpcError::EmptyTopology { what: "grid" });
    }
}
