//! Serving differential: the shared-plan cache must be purely a cost
//! optimization. Replaying the same seeded stream cache-on and
//! cache-off must produce byte-identical per-query outputs while the
//! cache-on run charges strictly less IO and communication — and the
//! savings must reconcile *exactly* with the cache's own ledger: every
//! hit banks precisely the build cost the off run pays. The same
//! replay must also be byte-identical under `ExecMode::Parallel` and
//! fully deterministic under injected fault plans with either recovery
//! strategy.

use parqp::faults::{FaultSpec, RecoveryStrategy};
use parqp::mpc::{exec, ExecMode};
use parqp::serve::{replay, FaultSetup, ServeConfig, ServeReport};

fn stream() -> ServeConfig {
    ServeConfig {
        servers: 4,
        tenants: 3,
        templates: 3,
        groups: 5,
        ticks: 24,
        seed: 42,
        cache_budget: 60_000,
        ..ServeConfig::default()
    }
}

fn cache_off(cfg: &ServeConfig) -> ServeConfig {
    ServeConfig {
        cache_budget: 0,
        ..cfg.clone()
    }
}

fn faulted(cfg: &ServeConfig, strategy: RecoveryStrategy) -> ServeConfig {
    ServeConfig {
        faults: Some(FaultSetup {
            spec: FaultSpec {
                crashes: 2,
                ..FaultSpec::default()
            },
            strategy,
            horizon: 6,
        }),
        ..cfg.clone()
    }
}

fn digests(r: &ServeReport) -> Vec<(u64, u64)> {
    r.records.iter().map(|q| (q.serial, q.digest)).collect()
}

#[test]
fn cache_on_and_off_serve_byte_identical_results() {
    let on = replay(&stream()).expect("valid config");
    let off = replay(&cache_off(&stream())).expect("valid config");
    assert_eq!(on.served(), off.served(), "same stream, same arrivals");
    assert!(on.cache.hits > 0, "stream must exercise the cache");
    for (a, b) in on.records.iter().zip(off.records.iter()) {
        assert_eq!((a.serial, a.tick, a.tenant), (b.serial, b.tick, b.tenant));
        assert_eq!(a.out_rows, b.out_rows, "query #{}", a.serial);
        assert_eq!(
            a.digest, b.digest,
            "query #{} ({} group {}) diverged under caching",
            a.serial, a.template, a.group
        );
    }
}

#[test]
fn cache_savings_reconcile_exactly_with_the_build_costs() {
    let on = replay(&stream()).expect("valid config");
    let off = replay(&cache_off(&stream())).expect("valid config");
    // Strictly cheaper: hits skip base scans and partition exchanges.
    assert!(on.cache.reads_saved > 0);
    assert!(
        on.io.reads < off.io.reads,
        "{} vs {}",
        on.io.reads,
        off.io.reads
    );
    assert!(on.totals.total_words() < off.totals.total_words());
    assert!(on.totals.total_tuples() < off.totals.total_tuples());
    // And exactly cheaper: the off run pays one build per query, the on
    // run pays one per miss; every hit banks exactly that build's cost.
    assert_eq!(on.io.reads + on.cache.reads_saved, off.io.reads);
    assert_eq!(
        on.totals.total_words() + on.cache.words_saved,
        off.totals.total_words()
    );
    assert_eq!(
        on.totals.total_tuples() + on.cache.reads_saved,
        off.totals.total_tuples()
    );
    // Round arithmetic: off = build + probe per query; on skips the
    // build round on every hit.
    assert_eq!(off.totals.num_rounds() as u64, 2 * off.served());
    assert_eq!(on.totals.num_rounds() as u64, on.served() + on.cache.misses);
}

#[test]
fn parallel_execution_is_byte_identical_to_serial() {
    let serial = replay(&stream()).expect("valid config").jsonl();
    let parallel = {
        let _guard = exec::install(ExecMode::Parallel { workers: 2 });
        replay(&stream()).expect("valid config").jsonl()
    };
    assert_eq!(serial, parallel, "--exec parallel must not change output");
}

#[test]
fn parallel_execution_is_byte_identical_under_faults() {
    let cfg = faulted(&stream(), RecoveryStrategy::Checkpoint { every: 2 });
    let serial = replay(&cfg).expect("valid config").jsonl();
    let parallel = {
        let _guard = exec::install(ExecMode::Parallel { workers: 2 });
        replay(&cfg).expect("valid config").jsonl()
    };
    assert_eq!(serial, parallel);
}

#[test]
fn replays_are_byte_identical_under_both_recovery_strategies() {
    for strategy in [
        RecoveryStrategy::Checkpoint { every: 2 },
        RecoveryStrategy::Replication { replicas: 2 },
    ] {
        let cfg = faulted(&stream(), strategy);
        let a = replay(&cfg).expect("valid config");
        let b = replay(&cfg).expect("valid config");
        assert_eq!(a.jsonl(), b.jsonl(), "{strategy:?}");
        assert_eq!(a.table(), b.table(), "{strategy:?}");
        let log = a.fault_log.as_ref().expect("fault log present");
        assert!(log.fired() > 0, "{strategy:?}: plan must fire under load");
    }
}

#[test]
fn fault_injection_is_transparent_to_served_results() {
    let clean = replay(&stream()).expect("valid config");
    for strategy in [
        RecoveryStrategy::Checkpoint { every: 2 },
        RecoveryStrategy::Replication { replicas: 2 },
    ] {
        let faulty = replay(&faulted(&stream(), strategy)).expect("valid config");
        assert_eq!(
            digests(&clean),
            digests(&faulty),
            "{strategy:?}: recovery must reproduce every query's output"
        );
        assert!(
            faulty.totals.total_tuples() > clean.totals.total_tuples(),
            "{strategy:?}: recovery overhead must be charged to the ledger"
        );
    }
}

#[test]
fn cache_remains_transparent_under_faults() {
    let strategy = RecoveryStrategy::Checkpoint { every: 2 };
    let on = replay(&faulted(&stream(), strategy)).expect("valid config");
    let off = replay(&cache_off(&faulted(&stream(), strategy))).expect("valid config");
    assert_eq!(digests(&on), digests(&off));
}
