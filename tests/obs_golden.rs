//! Golden-file test for the Prometheus text-exposition exporter.
//!
//! A fixed-seed observed serving replay must export byte-for-byte the
//! exposition committed under `tests/golden/`. Prometheus scrapers and
//! dashboards parse these lines by name and label, so silent format
//! drift (metric renames, label changes, float formatting) is a
//! regression even when every unit test passes.
//!
//! Regenerate after an *intentional* format change with:
//!
//! ```text
//! PARQP_UPDATE_GOLDEN=1 cargo test --test obs_golden
//! ```

use parqp::serve::{replay_observed, ServeConfig};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/serve_windows.prom")
}

#[test]
fn prometheus_export_matches_golden_file() {
    let cfg = ServeConfig {
        servers: 4,
        tenants: 2,
        templates: 2,
        groups: 4,
        ticks: 16,
        seed: 9,
        cache_budget: 50_000,
        ..ServeConfig::default()
    };
    let (_, series) = replay_observed(&cfg, 4).expect("valid config");
    let prom = series.prometheus();

    let path = golden_path();
    if std::env::var_os("PARQP_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &prom).expect("write golden file");
        return;
    }
    let expect = std::fs::read_to_string(&path).expect(
        "golden file missing; regenerate with PARQP_UPDATE_GOLDEN=1 cargo test --test obs_golden",
    );
    assert_eq!(
        prom, expect,
        "Prometheus exposition drifted from tests/golden/serve_windows.prom; \
         if intentional, regenerate with PARQP_UPDATE_GOLDEN=1"
    );
}
