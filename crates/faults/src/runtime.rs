//! The thread-local fault runtime: install a plan, tick the logical
//! round clock, and log what fired.
//!
//! Mirrors `parqp_trace::recorder`'s registry pattern: the simulator is
//! single-threaded by design (PQ004), so a thread-local slot is the
//! whole "global" state. [`install`] puts a plan + strategy in the
//! slot and returns a [`FaultGuard`] that restores the previous runtime
//! on drop (panic-safe). `parqp-mpc` is the only caller of the round
//! hooks ([`next_round_faults`], [`note_injected`], [`note_recovery`]
//! — lint rule PQ106); everything else only installs plans and reads
//! the resulting [`FaultLog`].

use std::cell::RefCell;
use std::rc::Rc;

use crate::plan::{FaultKind, FaultPlan};
use crate::recovery::RecoveryStrategy;

/// One fault that actually fired, as recorded by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Ledger round index the fault was charged to.
    pub round: usize,
    /// Victim server rank.
    pub server: usize,
    /// [`FaultKind::name`] of the fault.
    pub kind: &'static str,
}

/// What an installed plan did to a run: the faults that fired and the
/// total recovery overhead charged to the ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Every fault that fired, in injection order.
    pub injected: Vec<InjectedFault>,
    /// Extra ledger rounds appended by recovery.
    pub recovery_rounds: usize,
    /// Extra tuples charged by recovery (including same-round charges
    /// for duplicates and speculative re-execution).
    pub recovery_tuples: u64,
    /// Extra words charged by recovery.
    pub recovery_words: u64,
}

impl FaultLog {
    /// Number of faults that fired.
    pub fn fired(&self) -> usize {
        self.injected.len()
    }
}

#[derive(Debug)]
struct Runtime {
    plan: FaultPlan,
    strategy: RecoveryStrategy,
    /// Logical round clock: ticked once per *recorded algorithm round*
    /// (recovery rounds appended to the ledger do not tick it, so
    /// injected overhead never shifts the schedule).
    clock: usize,
    log: FaultLog,
}

thread_local! {
    static ACTIVE: RefCell<Option<Rc<RefCell<Runtime>>>> = const { RefCell::new(None) };
}

/// Restores the previously installed fault runtime when dropped.
#[must_use = "dropping the guard immediately uninstalls the fault plan"]
pub struct FaultGuard {
    previous: Option<Rc<RefCell<Runtime>>>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ACTIVE.with(|slot| {
            *slot.borrow_mut() = self.previous.take();
        });
    }
}

/// Install `plan` (recovered via `strategy`) as this thread's fault
/// runtime until the returned guard drops. Nesting is allowed; the
/// innermost install wins and the outer runtime resumes (clock and log
/// intact) when the inner guard drops.
pub fn install(plan: FaultPlan, strategy: RecoveryStrategy) -> FaultGuard {
    install_shared(plan, strategy).0
}

/// [`install`], also returning a handle to the runtime so [`capture`]
/// can collect the log after the guard drops.
fn install_shared(
    plan: FaultPlan,
    strategy: RecoveryStrategy,
) -> (FaultGuard, Rc<RefCell<Runtime>>) {
    let runtime = Rc::new(RefCell::new(Runtime {
        plan,
        strategy,
        clock: 0,
        log: FaultLog::default(),
    }));
    let previous = ACTIVE.with(|slot| slot.borrow_mut().replace(runtime.clone()));
    (FaultGuard { previous }, runtime)
}

/// Whether a fault plan is currently installed. The simulator uses
/// this to skip fault bookkeeping entirely on the fault-free path.
pub fn is_enabled() -> bool {
    ACTIVE.with(|slot| slot.borrow().is_some())
}

/// Advance the logical round clock and return the faults scheduled for
/// the round that just ran, filtered to servers `< p` and in ascending
/// server order. Returns an empty vec when no runtime is installed.
///
/// Called by `parqp-mpc` exactly once per recorded algorithm round
/// (lint rule PQ106) — dropped and untracked exchanges do not tick.
pub fn next_round_faults(p: usize) -> Vec<(usize, FaultKind)> {
    ACTIVE.with(|slot| {
        let slot = slot.borrow();
        let Some(rt) = slot.as_ref() else {
            return Vec::new();
        };
        let mut rt = rt.borrow_mut();
        let round = rt.clock;
        rt.clock += 1;
        let mut faults = rt.plan.faults_at(round);
        faults.retain(|&(server, _)| server < p);
        faults
    })
}

/// The crash-recovery strategy of the installed runtime, if any.
pub fn active_strategy() -> Option<RecoveryStrategy> {
    ACTIVE.with(|slot| slot.borrow().as_ref().map(|rt| rt.borrow().strategy))
}

/// Log that a fault fired at ledger round `round` on `server`.
/// Simulator-only (lint rule PQ106); a no-op when nothing is installed.
pub fn note_injected(round: usize, server: usize, kind: &'static str) {
    ACTIVE.with(|slot| {
        if let Some(rt) = slot.borrow().as_ref() {
            rt.borrow_mut().log.injected.push(InjectedFault {
                round,
                server,
                kind,
            });
        }
    });
}

/// Charge recovery overhead to the log: `rounds` extra ledger rounds
/// carrying `tuples`/`words` of extra load. Simulator-only (lint rule
/// PQ106); a no-op when nothing is installed.
pub fn note_recovery(rounds: usize, tuples: u64, words: u64) {
    ACTIVE.with(|slot| {
        if let Some(rt) = slot.borrow().as_ref() {
            let mut rt = rt.borrow_mut();
            rt.log.recovery_rounds += rounds;
            rt.log.recovery_tuples += tuples;
            rt.log.recovery_words += words;
        }
    });
}

/// Rewind the logical round clock to 0 (the fault log is kept).
///
/// `Cluster::reset` calls this so a replay after a reset sees the same
/// schedule from round 0 again, starting from a clean ledger.
pub fn reset_round_clock() {
    ACTIVE.with(|slot| {
        if let Some(rt) = slot.borrow().as_ref() {
            rt.borrow_mut().clock = 0;
        }
    });
}

/// Run `f` with `plan` installed and return what fired alongside `f`'s
/// result. The previous runtime (if any) is restored afterwards, even
/// if `f` panics.
pub fn capture<R>(
    plan: FaultPlan,
    strategy: RecoveryStrategy,
    f: impl FnOnce() -> R,
) -> (FaultLog, R) {
    let (guard, runtime) = install_shared(plan, strategy);
    let result = {
        let _guard = guard;
        f()
    };
    let log = Rc::try_unwrap(runtime)
        .expect("capture's runtime must not be retained past the closure")
        .into_inner()
        .log;
    (log, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_runtime_is_inert() {
        assert!(!is_enabled());
        assert!(next_round_faults(8).is_empty());
        assert!(active_strategy().is_none());
        note_injected(0, 0, "crash"); // must not panic
        note_recovery(1, 2, 3);
        reset_round_clock();
    }

    #[test]
    fn clock_ticks_and_filters_out_of_range_servers() {
        let plan = FaultPlan::new()
            .with_fault(0, 2, FaultKind::Crash)
            .with_fault(0, 9, FaultKind::Straggle) // server ≥ p: ignored
            .with_fault(2, 1, FaultKind::Drop { msgs: 3 });
        let (log, ()) = capture(plan, RecoveryStrategy::default(), || {
            assert!(is_enabled());
            assert_eq!(next_round_faults(4), vec![(2, FaultKind::Crash)]);
            assert!(next_round_faults(4).is_empty()); // round 1
            assert_eq!(next_round_faults(4), vec![(1, FaultKind::Drop { msgs: 3 })]);
        });
        assert!(!is_enabled());
        assert_eq!(log.fired(), 0, "only the simulator logs injections");
    }

    #[test]
    fn reset_round_clock_replays_the_schedule() {
        let plan = FaultPlan::new().with_fault(0, 0, FaultKind::Crash);
        let (_, ()) = capture(plan, RecoveryStrategy::default(), || {
            assert_eq!(next_round_faults(2).len(), 1);
            assert!(next_round_faults(2).is_empty());
            reset_round_clock();
            assert_eq!(
                next_round_faults(2).len(),
                1,
                "schedule replays after reset"
            );
        });
    }

    #[test]
    fn capture_collects_notes() {
        let (log, out) = capture(
            FaultPlan::new(),
            RecoveryStrategy::Replication { replicas: 3 },
            || {
                assert_eq!(
                    active_strategy(),
                    Some(RecoveryStrategy::Replication { replicas: 3 })
                );
                note_injected(5, 1, "crash");
                note_recovery(1, 100, 200);
                note_recovery(2, 10, 20);
                42
            },
        );
        assert_eq!(out, 42);
        assert_eq!(
            log.injected,
            vec![InjectedFault {
                round: 5,
                server: 1,
                kind: "crash"
            }]
        );
        assert_eq!(log.recovery_rounds, 3);
        assert_eq!(log.recovery_tuples, 110);
        assert_eq!(log.recovery_words, 220);
    }

    #[test]
    fn nested_install_restores_outer_clock() {
        let outer = FaultPlan::new().with_fault(1, 0, FaultKind::Straggle);
        let (log, ()) = capture(outer, RecoveryStrategy::default(), || {
            assert!(next_round_faults(2).is_empty()); // outer round 0
            let inner = FaultPlan::new().with_fault(0, 1, FaultKind::Crash);
            let (inner_log, ()) = capture(inner, RecoveryStrategy::default(), || {
                assert_eq!(next_round_faults(2), vec![(1, FaultKind::Crash)]);
                note_recovery(1, 5, 5);
            });
            assert_eq!(inner_log.recovery_rounds, 1);
            // Outer clock resumes at round 1, where its fault fires.
            assert_eq!(next_round_faults(2), vec![(0, FaultKind::Straggle)]);
        });
        assert_eq!(log.recovery_rounds, 0, "inner notes must not leak out");
    }

    #[test]
    fn guard_restores_on_panic() {
        let caught = std::panic::catch_unwind(|| {
            let _ = capture(FaultPlan::new(), RecoveryStrategy::default(), || {
                panic!("boom")
            });
        });
        assert!(caught.is_err());
        assert!(!is_enabled(), "panic must not leave a runtime installed");
    }
}
