//! Optimal HyperCube shares.
//!
//! The HyperCube algorithm arranges `p` servers in a `p₁ × … × p_k` grid,
//! one dimension per join variable, with `∏ pᵢ ≤ p` (slide 37). Relation
//! `S_j` is hashed on its own variables and replicated along the others,
//! so a server receives `|S_j| / ∏_{i ∈ S_j} pᵢ` of its tuples in
//! expectation (slide 38). Writing `pᵢ = p^{eᵢ}`, minimizing the maximum
//! per-relation load is the linear program (in `log_p` space):
//!
//! ```text
//! minimize λ   s.t.  ∀j:  Σ_{i∈S_j} eᵢ + λ ≥ w_j     (w_j = log_p |S_j|)
//!                    Σᵢ eᵢ ≤ 1,   eᵢ ≥ 0,   λ free
//! ```
//!
//! By LP duality the optimum equals the edge-packing bound of slide 40:
//! `L = max_u (∏_j |S_j|^{u_j} / p)^{1/Σu_j}` — a fact the tests verify.
//!
//! Real grids need integer shares; [`integer_shares`] rounds the
//! fractional optimum greedily, never exceeding `p` servers.

use crate::covers::fractional_edge_packing;
use crate::hypergraph::Hypergraph;
use crate::simplex::{solve, Constraint, ConstraintOp, LinearProgram};

/// A complete share plan for a query.
#[derive(Debug, Clone)]
pub struct ShareAssignment {
    /// Fractional exponents `eᵢ` with `pᵢ = p^{eᵢ}` (one per variable).
    pub exponents: Vec<f64>,
    /// The LP optimum `λ = log_p L`: the fractional-share load is `p^λ`.
    pub log_p_load: f64,
    /// Rounded integer shares with `∏ shares ≤ p`.
    pub shares: Vec<usize>,
}

impl ShareAssignment {
    /// The load predicted by the *fractional* optimum, in tuples.
    pub fn fractional_load(&self, p: usize) -> f64 {
        (p as f64).powf(self.log_p_load)
    }
}

/// Solve the share-exponent LP. Returns `(exponents, λ)` where
/// `λ = log_p L` at the fractional optimum.
///
/// # Panics
/// Panics if `p < 2`, `sizes.len() != h.num_edges()`, or any size is 0.
pub fn optimal_share_exponents(h: &Hypergraph, sizes: &[u64], p: usize) -> (Vec<f64>, f64) {
    assert!(p >= 2, "share optimization needs p >= 2");
    assert_eq!(sizes.len(), h.num_edges(), "one size per atom required");
    assert!(sizes.iter().all(|&s| s > 0), "atom sizes must be positive");
    let k = h.num_vertices();
    let logp = (p as f64).ln();
    let w: Vec<f64> = sizes.iter().map(|&s| (s as f64).ln() / logp).collect();

    // Variables: e_0 .. e_{k-1}, λ⁺ (index k), λ⁻ (index k+1).
    let nvars = k + 2;
    let mut constraints = Vec::with_capacity(h.num_edges() + 1);
    for (j, e) in h.edges().iter().enumerate() {
        let mut coeffs = vec![0.0; nvars];
        for &v in e {
            coeffs[v] = 1.0;
        }
        coeffs[k] = 1.0;
        coeffs[k + 1] = -1.0;
        constraints.push(Constraint::new(coeffs, ConstraintOp::Ge, w[j]));
    }
    let mut sum = vec![0.0; nvars];
    sum[..k].fill(1.0);
    constraints.push(Constraint::new(sum, ConstraintOp::Le, 1.0));

    let mut objective = vec![0.0; nvars];
    objective[k] = 1.0;
    objective[k + 1] = -1.0;
    let lp = LinearProgram {
        objective,
        maximize: false,
        constraints,
    };
    let s = solve(&lp).expect_optimal("share LP is feasible (e = 0, λ = max w)");
    let exponents = s.x[..k].to_vec();
    (exponents, s.objective)
}

/// Predicted per-server load (in tuples) of the HyperCube with the given
/// integer shares: `max_j |S_j| / ∏_{i∈S_j} sᵢ`, computed in floats.
pub fn predicted_load(h: &Hypergraph, sizes: &[u64], shares: &[usize]) -> f64 {
    assert_eq!(shares.len(), h.num_vertices());
    h.edges()
        .iter()
        .zip(sizes)
        .map(|(e, &s)| {
            let denom: f64 = e.iter().map(|&v| shares[v] as f64).product();
            s as f64 / denom
        })
        .fold(0.0, f64::max)
}

/// Sum of per-relation predicted loads (the greedy's secondary
/// objective: progress on non-bottleneck relations while the max ties).
fn total_load(h: &Hypergraph, sizes: &[u64], shares: &[usize]) -> f64 {
    h.edges()
        .iter()
        .zip(sizes)
        .map(|(e, &s)| {
            let denom: f64 = e.iter().map(|&v| shares[v] as f64).product();
            s as f64 / denom
        })
        .sum()
}

/// Round fractional exponents into integer shares with `∏ shares ≤ p`.
///
/// Two candidate roundings are computed and the one with the smaller
/// [`predicted_load`] wins:
///
/// 1. **pure greedy** from all-1 shares (good when the LP splits budget
///    unevenly — e.g. triangles at non-cube `p`);
/// 2. **LP floor + greedy top-up**: start from `max(1, ⌊p^{eᵢ}⌋)`
///    (shrunk to fit `p`), then greedily spend any leftover budget —
///    this follows the LP's structure on long chains, where pure greedy
///    can strand budget on even-positioned variables.
pub fn integer_shares(h: &Hypergraph, sizes: &[u64], p: usize, exponents: &[f64]) -> Vec<usize> {
    let k = h.num_vertices();
    assert_eq!(exponents.len(), k, "one exponent per variable");
    assert!(p >= 1);

    let greedy = greedy_from(vec![1; k], h, sizes, p, exponents);
    let mut floored: Vec<usize> = exponents
        .iter()
        .map(|&e| ((p as f64).powf(e).floor() as usize).max(1))
        .collect();
    while floored.iter().product::<usize>() > p {
        let i = (0..k)
            .filter(|&i| floored[i] > 1)
            .max_by_key(|&i| floored[i])
            .expect("product > p needs a share > 1");
        floored[i] -= 1;
    }
    let topped = greedy_from(floored, h, sizes, p, exponents);

    if predicted_load(h, sizes, &topped) < predicted_load(h, sizes, &greedy) {
        topped
    } else {
        greedy
    }
}

/// Greedy share increments from a feasible starting point: repeatedly
/// bump the dimension that most reduces the max load — with the *sum* of
/// per-relation loads as tiebreak (progress on non-bottleneck relations
/// while the max ties), then the larger fractional exponent, then the
/// smaller index — while the product stays within `p`.
fn greedy_from(
    start: Vec<usize>,
    h: &Hypergraph,
    sizes: &[u64],
    p: usize,
    exponents: &[f64],
) -> Vec<usize> {
    let k = h.num_vertices();
    let mut shares = start;
    loop {
        let product: usize = shares.iter().product();
        // (max load, sum load, -exponent, dim)
        let mut best: Option<(f64, f64, f64, usize)> = None;
        for i in 0..k {
            // Incrementing dim i multiplies the product by (s_i+1)/s_i.
            if product / shares[i] * (shares[i] + 1) > p {
                continue;
            }
            shares[i] += 1;
            let load = predicted_load(h, sizes, &shares);
            let sum = total_load(h, sizes, &shares);
            shares[i] -= 1;
            let cand = (load, sum, -exponents[i], i);
            // Relative tolerance: loads can be ~1e6, where any absolute
            // epsilon below one ULP would make ties undetectable.
            let distinct = |a: f64, b: f64| (a - b).abs() > 1e-9 * a.abs().max(b.abs()).max(1.0);
            let better = best.is_none_or(|b| {
                if distinct(cand.0, b.0) {
                    cand.0 < b.0
                } else if distinct(cand.1, b.1) {
                    cand.1 < b.1
                } else {
                    (cand.2, cand.3) < (b.2, b.3)
                }
            });
            if better {
                best = Some(cand);
            }
        }
        match best {
            Some((_, _, _, i)) => shares[i] += 1,
            None => return shares,
        }
    }
}

/// Convenience wrapper: solve the exponent LP and round to integers.
///
/// ```
/// use parqp_lp::{plan_shares, Hypergraph};
///
/// // Triangle, equal sizes, 64 servers: the LP picks the 4×4×4 cube.
/// let plan = plan_shares(&Hypergraph::triangle(), &[10_000; 3], 64);
/// assert_eq!(plan.shares, vec![4, 4, 4]);
/// ```
pub fn plan_shares(h: &Hypergraph, sizes: &[u64], p: usize) -> ShareAssignment {
    let (exponents, log_p_load) = optimal_share_exponents(h, sizes, p);
    let shares = integer_shares(h, sizes, p, &exponents);
    ShareAssignment {
        exponents,
        log_p_load,
        shares,
    }
}

/// The slide-40 closed form: the optimal fractional load
/// `L = max_u (∏_j |S_j|^{u_j} / p)^{1/Σ u_j}` evaluated at the optimal
/// packing `u` returned by [`fractional_edge_packing`] — correct whenever
/// all sizes are equal (then the optimum is attained at the maximum
/// packing), and a lower bound in general.
pub fn packing_load_bound(h: &Hypergraph, sizes: &[u64], p: usize) -> f64 {
    let packing = fractional_edge_packing(h);
    let total: f64 = packing.weights.iter().sum();
    if total <= 1e-12 {
        return 0.0;
    }
    let log_num: f64 = packing
        .weights
        .iter()
        .zip(sizes)
        .map(|(&u, &s)| u * (s as f64).ln())
        .sum();
    ((log_num - (p as f64).ln()) / total).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn triangle_equal_sizes_exponents() {
        // Slide 40/41: equal sizes N → e = (1/3,1/3,1/3), L = N/p^{2/3}.
        let h = Hypergraph::triangle();
        let n = 1_000_000;
        let p = 64;
        let (e, lam) = optimal_share_exponents(&h, &[n, n, n], p);
        for &ei in &e {
            assert!(close(ei, 1.0 / 3.0, 1e-6), "exponent {ei}");
        }
        let expect = (n as f64) / (p as f64).powf(2.0 / 3.0);
        assert!(close((p as f64).powf(lam), expect, expect * 1e-6));
    }

    #[test]
    fn two_way_hashes_join_variable() {
        // R(x,y) ⋈ S(y,z): all share on y → L = N/p.
        let h = Hypergraph::two_way();
        let n = 10_000;
        let (e, lam) = optimal_share_exponents(&h, &[n, n], 16);
        assert!(close(e[1], 1.0, 1e-6), "e_y = {}", e[1]);
        assert!(close((16.0f64).powf(lam), n as f64 / 16.0, 1.0));
    }

    #[test]
    fn lp_matches_packing_bound_equal_sizes() {
        for h in [
            Hypergraph::triangle(),
            Hypergraph::cycle(4),
            Hypergraph::chain(3),
        ] {
            let sizes = vec![100_000u64; h.num_edges()];
            let p = 64;
            let (_, lam) = optimal_share_exponents(&h, &sizes, p);
            let lp_load = (p as f64).powf(lam);
            let pack = packing_load_bound(&h, &sizes, p);
            assert!(
                close(lp_load, pack, pack * 1e-5),
                "{lp_load} vs {pack} for {h:?}"
            );
        }
    }

    #[test]
    fn unequal_triangle_small_relation_gets_no_shares() {
        // Slide 44: when |R| dominates, pz = 1 and L = |R|/p... in exponent
        // form: tiny |S|,|T| → the LP puts shares on x,y only.
        let h = Hypergraph::triangle(); // R={x,y}, S={y,z}, T={x,z}
        let p = 64;
        let (e, _) = optimal_share_exponents(&h, &[1_000_000, 100, 100], p);
        assert!(e[2] < 0.05, "e_z = {} should be ~0", e[2]);
        assert!(close(e[0] + e[1], 1.0, 1e-6));
    }

    #[test]
    fn integer_shares_triangle_cube() {
        let h = Hypergraph::triangle();
        let n = 1_000_000u64;
        let plan = plan_shares(&h, &[n, n, n], 64);
        assert_eq!(plan.shares, vec![4, 4, 4]);
        let prod: usize = plan.shares.iter().product();
        assert!(prod <= 64);
    }

    #[test]
    fn integer_shares_respect_budget() {
        for p in [1, 2, 3, 5, 7, 10, 17, 100, 1000] {
            for h in [
                Hypergraph::triangle(),
                Hypergraph::chain(4),
                Hypergraph::star(3),
            ] {
                let sizes = vec![1000u64; h.num_edges()];
                if p >= 2 {
                    let plan = plan_shares(&h, &sizes, p);
                    let prod: usize = plan.shares.iter().product();
                    assert!(prod <= p, "product {prod} > p {p}");
                    assert!(plan.shares.iter().all(|&s| s >= 1));
                }
            }
        }
    }

    #[test]
    fn integer_rounding_near_fractional_optimum() {
        // For a perfect cube p the rounded load should match the
        // fractional bound exactly; otherwise stay within a small factor.
        let h = Hypergraph::triangle();
        let n = 1_000_000u64;
        for p in [8usize, 27, 64, 125, 512] {
            let plan = plan_shares(&h, &[n, n, n], p);
            let frac = plan.fractional_load(p);
            let rounded = predicted_load(&h, &[n, n, n], &plan.shares);
            assert!(rounded <= frac * 2.0 + 1.0, "p={p}: {rounded} vs {frac}");
        }
    }

    #[test]
    fn two_way_integer_shares_all_on_join_var() {
        let h = Hypergraph::two_way();
        let plan = plan_shares(&h, &[1000, 1000], 16);
        assert_eq!(
            plan.shares[1], 16,
            "join variable takes all servers: {:?}",
            plan.shares
        );
    }

    #[test]
    fn cartesian_grid_from_lp() {
        // Product query R(x) ⋈ S(z) (no shared variable): hypergraph with
        // two disjoint unary edges. Equal sizes → shares √p × √p (slide 28).
        let h = Hypergraph::new(2, vec![vec![0], vec![1]]);
        let plan = plan_shares(&h, &[10_000, 10_000], 16);
        assert_eq!(plan.shares, vec![4, 4]);
    }

    #[test]
    fn cartesian_grid_unequal_slide28() {
        // Optimal split |R|/p1 = |S|/p2 (slide 28).
        let h = Hypergraph::new(2, vec![vec![0], vec![1]]);
        let plan = plan_shares(&h, &[40_000, 10_000], 16);
        assert_eq!(plan.shares, vec![8, 2]);
    }

    #[test]
    fn predicted_load_formula() {
        let h = Hypergraph::triangle();
        let load = predicted_load(&h, &[120, 60, 240], &[2, 3, 1]);
        // R/(2·3)=20, S/(3·1)=20, T/(2·1)=120
        assert!(close(load, 120.0, 1e-9));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        optimal_share_exponents(&Hypergraph::triangle(), &[0, 1, 1], 4);
    }
}
