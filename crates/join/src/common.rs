//! Shared plumbing for the join algorithms.

use parqp_data::{Relation, Value};
use parqp_mpc::{LoadReport, Weight};

/// The result of running a distributed algorithm: per-server outputs and
/// the communication cost summary.
#[derive(Debug, Clone)]
pub struct JoinRun {
    /// Output fragment held by each server.
    pub outputs: Vec<Relation>,
    /// The `(L, r, C)` ledger of the run.
    pub report: LoadReport,
}

impl JoinRun {
    /// Concatenate the per-server outputs into one relation (test/driver
    /// convenience; the model itself leaves outputs distributed).
    pub fn gathered(&self) -> Relation {
        let arity = self.outputs.first().map_or(1, Relation::arity);
        let mut out = Relation::new(arity);
        for part in &self.outputs {
            out.extend_from(part);
        }
        out
    }

    /// Total number of output tuples across servers.
    pub fn output_size(&self) -> usize {
        self.outputs.iter().map(Relation::len).sum()
    }
}

/// A relation tuple on the wire, tagged with the index of the relation it
/// belongs to. The tag is routing metadata and is not charged as payload:
/// the load of a tuple is its width in words, matching the paper's
/// "tuples received" accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tagged {
    /// Index of the source relation (atom).
    pub tag: u32,
    /// The tuple.
    pub row: Vec<Value>,
}

impl Tagged {
    /// Construct a tagged tuple.
    pub fn new(tag: u32, row: Vec<Value>) -> Self {
        Self { tag, row }
    }
}

impl Weight for Tagged {
    fn words(&self) -> u64 {
        self.row.len() as u64
    }
}

/// Split `rel` into `p` round-robin fragments (the model's free initial
/// data placement).
pub fn scatter(rel: &Relation, p: usize) -> Vec<Relation> {
    let mut parts: Vec<Relation> = (0..p).map(|_| Relation::new(rel.arity())).collect();
    for (i, row) in rel.iter().enumerate() {
        parts[i % p].push(row);
    }
    parts
}

/// Build one output row of a two-way join in the workspace convention:
/// all of `r_row`, then `s_row` with the join column removed.
pub fn merge_rows(r_row: &[Value], s_row: &[Value], s_col: usize, buf: &mut Vec<Value>) {
    buf.clear();
    buf.extend_from_slice(r_row);
    for (i, &v) in s_row.iter().enumerate() {
        if i != s_col {
            buf.push(v);
        }
    }
}

/// Output arity of a two-way join under the [`merge_rows`] convention.
pub fn joined_arity(r_arity: usize, s_arity: usize) -> usize {
    r_arity + s_arity - 1
}

/// Local hash join of two tuple sets on `r_col` / `s_col`, appending
/// merged rows to `out`.
pub fn local_hash_join(
    r_rows: &[Vec<Value>],
    r_col: usize,
    s_rows: &[Vec<Value>],
    s_col: usize,
    out: &mut Relation,
) {
    use parqp_data::FastMap;
    let mut table: FastMap<Value, Vec<usize>> = FastMap::default();
    for (i, row) in r_rows.iter().enumerate() {
        table.entry(row[r_col]).or_default().push(i);
    }
    let mut buf = Vec::new();
    for s_row in s_rows {
        if let Some(matches) = table.get(&s_row[s_col]) {
            for &i in matches {
                merge_rows(&r_rows[i], s_row, s_col, &mut buf);
                out.push(&buf);
            }
        }
    }
}

/// The serial two-way equi-join oracle in the same output convention.
pub fn twoway_oracle(r: &Relation, r_col: usize, s: &Relation, s_col: usize) -> Relation {
    let mut out = Relation::new(joined_arity(r.arity(), s.arity()));
    let r_rows: Vec<Vec<Value>> = r.iter().map(<[Value]>::to_vec).collect();
    let s_rows: Vec<Vec<Value>> = s.iter().map(<[Value]>::to_vec).collect();
    local_hash_join(&r_rows, r_col, &s_rows, s_col, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_weight_counts_row_only() {
        let t = Tagged::new(3, vec![1, 2, 3]);
        assert_eq!(t.words(), 3);
    }

    #[test]
    fn scatter_round_robin() {
        let r = Relation::from_rows(1, [[0], [1], [2], [3], [4]]);
        let parts = scatter(&r, 2);
        assert_eq!(parts[0].to_rows(), vec![vec![0], vec![2], vec![4]]);
        assert_eq!(parts[1].to_rows(), vec![vec![1], vec![3]]);
    }

    #[test]
    fn merge_rows_drops_join_col() {
        let mut buf = Vec::new();
        merge_rows(&[1, 2], &[2, 9], 0, &mut buf);
        assert_eq!(buf, vec![1, 2, 9]);
        merge_rows(&[1, 2], &[9, 2], 1, &mut buf);
        assert_eq!(buf, vec![1, 2, 9]);
    }

    #[test]
    fn oracle_matches_hand_computation() {
        let r = Relation::from_rows(2, [[1, 5], [2, 5], [3, 6]]);
        let s = Relation::from_rows(2, [[5, 10], [6, 11], [6, 12]]);
        let out = twoway_oracle(&r, 1, &s, 0);
        let mut rows = out.to_rows();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![1, 5, 10],
                vec![2, 5, 10],
                vec![3, 6, 11],
                vec![3, 6, 12]
            ]
        );
    }

    #[test]
    fn gathered_concats() {
        let run = JoinRun {
            outputs: vec![
                Relation::from_rows(1, [[1]]),
                Relation::from_rows(1, [[2], [3]]),
            ],
            report: LoadReport::empty(2),
        };
        assert_eq!(run.output_size(), 3);
        assert_eq!(run.gathered().len(), 3);
    }
}
