//! # parqp-bench — the experiment harness
//!
//! One module per experiment (`e01` … `e14`), each regenerating a table
//! or figure of the paper as plain text rows plus CSV-ready series. The
//! `tables` binary prints any subset:
//!
//! ```text
//! cargo run --release -p parqp-bench --bin tables            # everything
//! cargo run --release -p parqp-bench --bin tables -- e05 e08 # a subset
//! ```
//!
//! Criterion wall-clock benches live in `benches/` (one group per
//! experiment family); the *numbers the paper is about* — loads, rounds,
//! communication — come from this module, deterministically.

pub mod experiments;
pub mod table;

pub use table::Table;

/// Run one experiment with a trace recorder installed, returning its
/// tables plus the captured round-level event stream. The `tables`
/// binary uses this for `--trace <dir>`, persisting a
/// `<id>.trace.jsonl` next to each experiment's CSV output.
pub fn run_traced(id: &str) -> (Vec<Table>, parqp_trace::Recorder) {
    let (recorder, tables) = parqp_trace::Recorder::capture(|| experiments::run(id));
    (tables, recorder)
}

#[cfg(test)]
mod tests {
    #[test]
    fn run_traced_captures_rounds() {
        let (tables, rec) = super::run_traced("e06");
        assert!(!tables.is_empty());
        let totals = parqp_trace::analyze::totals(&rec);
        assert!(totals.rounds >= 1);
        assert!(totals.tuples > 0);
    }
}
