//! The source-level rule families and their `PQxxx` IDs.
//!
//! Every rule is stated in terms of the MPC cost model the repo
//! reproduces: the `(L, r, C)` accounting of `parqp_mpc::Cluster` is
//! only meaningful if runs are bit-reproducible (determinism rules) and
//! if all communication actually flows through the simulator (layering
//! rules). See `DESIGN.md` § "Static analysis & determinism invariants"
//! for the rationale of each rule.
//!
//! | ID    | family      | what it forbids (non-test code)                         |
//! |-------|-------------|---------------------------------------------------------|
//! | PQ000 | meta        | malformed rule ID inside an `allow(...)` annotation     |
//! | PQ001 | determinism | std `HashMap`/`HashSet` (seeded, order-unstable)        |
//! | PQ002 | determinism | `RandomState` / `DefaultHasher` (per-process seeds)     |
//! | PQ003 | determinism | `Instant::now` / `SystemTime` (wall clock)              |
//! | PQ004 | determinism | `thread::spawn` / `std::thread` (scheduling order)      |
//! | PQ103 | layering    | OS side channels (`std::fs`, `std::io`, …) in algorithm |
//! |       |             | and simulator crates                                    |
//! | PQ104 | layering    | constructing accounting types (`RoundStats`, literal    |
//! |       |             | `LoadReport`, an `Exchange` type) outside `parqp-mpc`   |
//! | PQ105 | layering    | fabricating trace events (`TraceEvent`, `trace::emit`)  |
//! |       |             | outside `parqp-mpc`/`parqp-trace`; algorithm crates     |
//! |       |             | may only open `trace::span` labels                      |
//! | PQ106 | layering    | driving the fault runtime (`next_round_faults`,         |
//! |       |             | `note_injected`, `note_recovery`) outside               |
//! |       |             | `parqp-mpc`/`parqp-faults`; everyone else only          |
//! |       |             | installs plans (`faults::install` / `faults::capture`)  |
//! | PQ107 | layering    | feeding the metrics registry (`metrics::emit`) outside  |
//! |       |             | `parqp-mpc`/`parqp-metrics`; algorithm crates may only  |
//! |       |             | `metrics::announce` bounds, consumers only read the     |
//! |       |             | captured registry                                       |
//! | PQ109 | layering    | raw page access or IO-counter fabrication               |
//! |       |             | (`touch_page`, `alloc_pages`) outside                   |
//! |       |             | `parqp-store`/`parqp-data`; draining/rewinding the IO   |
//! |       |             | ledger (`drain_io`, `reset_io`) outside `parqp-mpc`;    |
//! |       |             | feeding it to metrics (`emit_io`) outside               |
//! |       |             | `parqp-mpc`/`parqp-metrics`. Algorithm crates touch     |
//! |       |             | paging only through `parqp_data::paged` scans           |
//! | PQ110 | layering    | driving the shared-plan cache (`PlanCache`) or          |
//! |       |             | fabricating per-tenant ledgers (`TenantLedger`) outside |
//! |       |             | `parqp-serve`; tenant counters must come out of the     |
//! |       |             | cluster's ledger deltas, and cache admission/eviction   |
//! |       |             | must stay inside the serving layer's exact hit/miss     |
//! |       |             | accounting. Consumers read `ServeReport` instead        |
//! | PQ111 | layering    | feeding the observation runtime (`obs::emit`,           |
//! |       |             | `obs::install`, `obs::capture`) or fabricating          |
//! |       |             | observations (`QueryObs`, `SeriesRecorder`) outside     |
//! |       |             | `parqp-serve`/`parqp-obs`; window series must come out  |
//! |       |             | of the serving driver's per-query ledger deltas.        |
//! |       |             | Consumers read the returned `SeriesReport` instead      |
//!
//! Manifest-level rules (`PQ101`, `PQ102`, `PQ301`, `PQ302`) live in
//! [`crate::manifest`]; the panic-surface ratchet (`PQ201`) lives in
//! [`crate::ratchet`].

use crate::tokenize::SourceFile;
use crate::Diagnostic;

/// Crate names whose `src/` the side-channel rule PQ103 applies to:
/// the simulator, the trace sink and the pure algorithm crates. `data`
/// (file I/O), `core` (CLI), `bench` (CSV output), `testkit` (env-var
/// knobs) and `lint` (this tool) legitimately touch the OS.
pub const SIDE_CHANNEL_SCOPE: &[&str] = &[
    "mpc", "lp", "query", "join", "sort", "matmul", "trace", "faults", "metrics", "store", "serve",
    "obs",
];

/// The one file in the workspace allowed to touch `std::thread`: the
/// sanctioned worker pool behind `mpc::exec`'s parallel mode. Its
/// `map` primitive merges results in submit order and barriers at the
/// end of every batch, which is exactly the determinism argument PQ004
/// otherwise enforces by banning threads outright.
pub const THREAD_POOL_PATH: &str = "crates/testkit/src/pool.rs";

/// A banned token with its rule, message, and crate scope.
struct TokenRule {
    rule: &'static str,
    token: &'static str,
    message: &'static str,
    /// `None` = all crates; `Some(crates)` = only these crate dirs.
    scope: Option<&'static [&'static str]>,
    /// Crates exempt even when `scope` is `None`.
    exempt: &'static [&'static str],
    /// Workspace-relative file paths exempt from this rule (matched
    /// with `ends_with`, so fixture copies under other roots match).
    exempt_paths: &'static [&'static str],
}

const TOKEN_RULES: &[TokenRule] = &[
    TokenRule {
        rule: "PQ001",
        token: "HashMap",
        message: "std HashMap iterates in seed-dependent order; use data::FastMap or BTreeMap",
        scope: None,
        exempt: &[],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ001",
        token: "HashSet",
        message: "std HashSet iterates in seed-dependent order; use data::FastSet or BTreeSet",
        scope: None,
        exempt: &[],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ002",
        token: "RandomState",
        message: "RandomState draws a per-process seed; hashing must be reproducible",
        scope: None,
        exempt: &[],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ002",
        token: "DefaultHasher",
        message: "DefaultHasher is RandomState-seeded; use data::FxHasher or mpc::HashFamily",
        scope: None,
        exempt: &[],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ003",
        token: "Instant::now",
        message: "wall-clock reads make runs irreproducible; time only inside parqp-testkit's bench harness",
        scope: None,
        exempt: &[],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ003",
        token: "SystemTime",
        message: "wall-clock reads make runs irreproducible; derive seeds explicitly instead",
        scope: None,
        exempt: &[],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ004",
        token: "thread::spawn",
        message: "OS threads reorder message arrival; spawning is sanctioned only inside testkit::pool",
        scope: None,
        exempt: &[],
        exempt_paths: &[THREAD_POOL_PATH],
    },
    TokenRule {
        rule: "PQ004",
        token: "std::thread",
        message: "OS threads reorder message arrival; spawning is sanctioned only inside testkit::pool",
        scope: None,
        exempt: &[],
        exempt_paths: &[THREAD_POOL_PATH],
    },
    TokenRule {
        rule: "PQ103",
        token: "std::fs",
        message: "algorithm/simulator crates must not touch the filesystem; I/O belongs in parqp-data::io",
        scope: Some(SIDE_CHANNEL_SCOPE),
        exempt: &[],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ103",
        token: "std::io",
        message: "algorithm/simulator crates must not do OS I/O; it bypasses the exchange ledger",
        scope: Some(SIDE_CHANNEL_SCOPE),
        exempt: &[],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ103",
        token: "std::net",
        message: "real sockets bypass Cluster::exchange; all communication must be charged to the ledger",
        scope: Some(SIDE_CHANNEL_SCOPE),
        exempt: &[],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ103",
        token: "std::process",
        message: "spawning processes bypasses the simulator; algorithm crates stay pure",
        scope: Some(SIDE_CHANNEL_SCOPE),
        exempt: &[],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ103",
        token: "std::env",
        message: "environment reads make runs machine-dependent; pass configuration explicitly",
        scope: Some(SIDE_CHANNEL_SCOPE),
        exempt: &[],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ103",
        token: "std::sync",
        message: "shared-memory synchronization has no MPC counterpart; servers share nothing",
        scope: Some(SIDE_CHANNEL_SCOPE),
        exempt: &[],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ104",
        token: "RoundStats",
        message: "only parqp-mpc may fabricate round accounting; use Cluster::record_round or a LoadReport combinator",
        scope: None,
        exempt: &["mpc"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ104",
        token: "struct Exchange",
        message: "only parqp-mpc owns the exchange primitive; route communication through Cluster::exchange",
        scope: None,
        exempt: &["mpc"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ105",
        token: "TraceEvent",
        message: "only parqp-mpc fabricates communication trace events (in Cluster::exchange); algorithm crates may only open trace::span labels",
        scope: None,
        exempt: &["mpc", "trace", "metrics"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ105",
        token: "trace::emit",
        message: "only parqp-mpc emits trace events, so traces mirror the exchange ledger exactly; use trace::span for labels",
        scope: None,
        exempt: &["mpc", "trace"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ106",
        token: "next_round_faults",
        message: "only parqp-mpc consumes the fault schedule (in its round recorder); ticking the clock elsewhere would shift every planned fault",
        scope: None,
        exempt: &["mpc", "faults"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ106",
        token: "note_injected",
        message: "only parqp-mpc reports injected faults; fabricating them elsewhere would desync the fault log from the ledger",
        scope: None,
        exempt: &["mpc", "faults"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ106",
        token: "note_recovery",
        message: "only parqp-mpc charges recovery overhead, so the fault log mirrors the LoadReport exactly; install plans via faults::capture instead",
        scope: None,
        exempt: &["mpc", "faults"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ107",
        token: "metrics::emit",
        message: "only parqp-mpc feeds the metrics registry, so metrics mirror the exchange ledger exactly; announce bounds via metrics::announce instead",
        scope: None,
        exempt: &["mpc", "metrics"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ109",
        token: "touch_page",
        message: "only parqp-store's pools and parqp-data's paged scans charge page reads; fabricating them elsewhere desyncs the IO ledger from the data actually scanned",
        scope: None,
        exempt: &["store", "data"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ109",
        token: "alloc_pages",
        message: "only parqp-store and parqp-data's paged representations allocate pages; scan through parqp_data::paged (RouteScan/IoCursor/IoRegion) instead",
        scope: None,
        exempt: &["store", "data"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ109",
        token: "drain_io",
        message: "only parqp-mpc drains the IO ledger (at round boundaries), so io metrics mirror the rounds exactly; read totals via store::io_report instead",
        scope: None,
        exempt: &["store", "mpc"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ109",
        token: "reset_io",
        message: "only parqp-mpc rewinds the IO ledger (in Cluster::reset), so counters stay aligned with the round clock",
        scope: None,
        exempt: &["store", "mpc"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ110",
        token: "PlanCache",
        message: "only parqp-serve drives the shared-plan cache, so its hit/miss/evict ledger stays exact; consumers read the CacheStats in a ServeReport instead",
        scope: None,
        exempt: &["serve"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ110",
        token: "TenantLedger",
        message: "only parqp-serve folds per-tenant ledgers (from the cluster's per-query report_since deltas); fabricating tenant counters elsewhere desyncs them from the (L, r, C) ledger",
        scope: None,
        exempt: &["serve"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ111",
        token: "obs::emit",
        message: "only parqp-serve emits served-query observations, so window series mirror the per-query report_since deltas exactly; read the SeriesReport a replay_observed returns instead",
        scope: None,
        exempt: &["serve", "obs"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ111",
        token: "obs::install",
        message: "only parqp-serve installs observation recorders (inside replay_observed); capture elsewhere would tear windows away from the replay's tick clock",
        scope: None,
        exempt: &["serve", "obs"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ111",
        token: "obs::capture",
        message: "only parqp-serve captures observation series (replay_observed wraps the whole replay); consumers take the returned SeriesReport",
        scope: None,
        exempt: &["serve", "obs"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ111",
        token: "QueryObs",
        message: "only parqp-serve fabricates served-query observations (from Cluster::report_since deltas and the page-IO ledger); inventing them elsewhere desyncs the series from the (L, r, C) ledger",
        scope: None,
        exempt: &["serve", "obs"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ111",
        token: "SeriesRecorder",
        message: "only parqp-obs owns the window recorder (installed by parqp-serve's replay_observed); read the finished SeriesReport instead",
        scope: None,
        exempt: &["serve", "obs"],
        exempt_paths: &[],
    },
    TokenRule {
        rule: "PQ109",
        token: "emit_io",
        message: "only parqp-mpc feeds drained IO deltas to the metrics registry; observe them via the captured registry instead",
        scope: None,
        exempt: &["mpc", "metrics"],
        exempt_paths: &[],
    },
];

/// Result of [`lint_source_tracked`]: diagnostics plus the allow
/// annotations that earned their keep (fed to the PQ408 dead-
/// suppression pass in [`crate::lint_workspace`]).
pub struct SourceLint {
    pub diagnostics: Vec<Diagnostic>,
    /// `(line, rule)` pairs where an `allow(rule)` suppressed a real
    /// finding on that line.
    pub used_allows: Vec<(usize, &'static str)>,
}

/// Lint one sanitized source file belonging to crate `crate_name`
/// (the directory name under `crates/`, e.g. `"mpc"`). `path` is used
/// verbatim in diagnostics.
pub fn lint_source(crate_name: &str, path: &str, file: &SourceFile) -> Vec<Diagnostic> {
    lint_source_tracked(crate_name, path, file).diagnostics
}

/// [`lint_source`], additionally reporting which allow annotations
/// actually suppressed a finding.
pub fn lint_source_tracked(crate_name: &str, path: &str, file: &SourceFile) -> SourceLint {
    let mut out = Vec::new();
    let mut used_allows = Vec::new();
    for line in &file.lines {
        // Malformed allow IDs are reported even on test lines: a typo'd
        // annotation silently fails open otherwise.
        for a in &line.allows {
            if !is_valid_rule_id(a) {
                out.push(Diagnostic {
                    rule: "PQ000",
                    path: path.to_string(),
                    line: line.number,
                    message: format!("malformed rule ID `{a}` in parqp-lint allow annotation"),
                });
            }
        }
        if line.in_test {
            continue;
        }
        for tr in TOKEN_RULES {
            if let Some(scope) = tr.scope {
                if !scope.contains(&crate_name) {
                    continue;
                }
            }
            if tr.exempt.contains(&crate_name) || tr.exempt_paths.iter().any(|p| path.ends_with(p))
            {
                continue;
            }
            if contains_token(&line.code, tr.token) {
                if line.allows(tr.rule) {
                    used_allows.push((line.number, tr.rule));
                } else {
                    out.push(Diagnostic {
                        rule: tr.rule,
                        path: path.to_string(),
                        line: line.number,
                        message: format!("`{}`: {}", tr.token, tr.message),
                    });
                }
            }
        }
        // PQ104 second form: a `LoadReport { … }` struct literal. The
        // token alone is legal everywhere (it is the public result type);
        // only *construction* outside mpc fabricates accounting. A `{`
        // directly after the token in a non-return-type position is a
        // struct literal.
        if crate_name != "mpc" && find_struct_literal(&line.code, "LoadReport").is_some() {
            if line.allows("PQ104") {
                used_allows.push((line.number, "PQ104"));
            } else {
                out.push(Diagnostic {
                    rule: "PQ104",
                    path: path.to_string(),
                    line: line.number,
                    message: "`LoadReport { … }` literal: only parqp-mpc may fabricate load \
                              reports; use LoadReport::empty/idle/padded or compose with \
                              parallel/sequential"
                        .to_string(),
                });
            }
        }
    }
    SourceLint {
        diagnostics: out,
        used_allows,
    }
}

/// Whether `id` looks like a rule ID this tool could own (`PQ` + 3 digits).
pub fn is_valid_rule_id(id: &str) -> bool {
    id.len() == 5 && id.starts_with("PQ") && id[2..].bytes().all(|b| b.is_ascii_digit())
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Substring match with identifier boundaries on both ends, so that
/// `FxHashMap` does not match `HashMap` and `std::fs` does not match
/// inside `std::fsevent`. `::` inside the token matches literally.
pub fn contains_token(code: &str, token: &str) -> bool {
    let bytes = code.as_bytes();
    let tb = token.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let end = at + tb.len();
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// Find `Token {` (a struct literal) that is not a function return type
/// (`-> Token {`). Returns the byte offset of the token.
pub(crate) fn find_struct_literal(code: &str, token: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let end = at + token.len();
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let rest = code[end..].trim_start();
        let brace_follows = rest.starts_with('{');
        let is_return_type = code[..at].trim_end().ends_with("->");
        if before_ok && brace_follows && !is_return_type {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::sanitize;

    fn rules_of(crate_name: &str, src: &str) -> Vec<(&'static str, usize)> {
        lint_source(crate_name, "test.rs", &sanitize(src))
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn hashmap_flagged_with_line() {
        let v = rules_of("join", "fn f() {}\nuse std::collections::HashMap;\n");
        assert_eq!(v, vec![("PQ001", 2)]);
    }

    #[test]
    fn fxhashmap_not_flagged() {
        assert!(rules_of("join", "use rustc_hash::FxHashMap;\n").is_empty());
    }

    #[test]
    fn test_module_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(rules_of("join", src).is_empty());
    }

    #[test]
    fn allow_suppresses() {
        let src = "use std::collections::HashMap; // parqp-lint: allow(PQ001)\n";
        assert!(rules_of("data", src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_everywhere() {
        assert_eq!(
            rules_of("bench", "let t = Instant::now();\n"),
            vec![("PQ003", 1)]
        );
        assert_eq!(
            rules_of("mpc", "use std::time::SystemTime;\n"),
            vec![("PQ003", 1)]
        );
    }

    #[test]
    fn threads_flagged() {
        assert_eq!(
            rules_of("sort", "std::thread::spawn(|| {});\n"),
            vec![("PQ004", 1), ("PQ004", 1)]
        );
    }

    #[test]
    fn thread_pool_file_is_exempt_from_pq004_only() {
        let spawn = "std::thread::spawn(|| {});\n";
        let diags = lint_source(
            "testkit",
            "crates/testkit/src/pool.rs",
            &crate::tokenize::sanitize(spawn),
        );
        assert!(diags.is_empty(), "the sanctioned pool may spawn: {diags:?}");
        // Everything else in testkit (and everywhere else) stays banned.
        for path in [
            "crates/testkit/src/bench.rs",
            "crates/mpc/src/pool.rs",
            "crates/join/src/twoway.rs",
        ] {
            let diags = lint_source("testkit", path, &crate::tokenize::sanitize(spawn));
            assert_eq!(
                diags.iter().map(|d| d.rule).collect::<Vec<_>>(),
                vec!["PQ004", "PQ004"],
                "{path} must still be flagged"
            );
        }
        // The exemption is per-rule: other determinism rules still fire
        // inside the pool file.
        let diags = lint_source(
            "testkit",
            "crates/testkit/src/pool.rs",
            &crate::tokenize::sanitize("let t = Instant::now();\n"),
        );
        assert_eq!(
            diags.iter().map(|d| d.rule).collect::<Vec<_>>(),
            vec!["PQ003"]
        );
    }

    #[test]
    fn side_channels_only_in_algorithm_crates() {
        assert_eq!(rules_of("join", "use std::fs;\n"), vec![("PQ103", 1)]);
        // data owns io.rs; core owns the CLI.
        assert!(rules_of("data", "use std::fs;\n").is_empty());
        assert!(rules_of("core", "use std::env;\n").is_empty());
        // the trace sink is as pure as the simulator it observes.
        assert_eq!(rules_of("trace", "use std::fs;\n"), vec![("PQ103", 1)]);
    }

    #[test]
    fn trace_event_fabrication_flagged_outside_mpc_and_trace() {
        let emit = "trace::emit(TraceEvent::RoundEnd { round, tuples, words });\n";
        assert_eq!(rules_of("join", emit), vec![("PQ105", 1), ("PQ105", 1)]);
        assert_eq!(rules_of("core", emit), vec![("PQ105", 1), ("PQ105", 1)]);
        assert!(rules_of("mpc", emit).is_empty());
        assert!(rules_of("trace", emit).is_empty());
    }

    #[test]
    fn fault_runtime_hooks_flagged_outside_mpc_and_faults() {
        let drive = "let planned = faults::next_round_faults(p);\n\
                     faults::note_injected(r, s, \"crash\");\n\
                     faults::note_recovery(1, t, w);\n";
        assert_eq!(
            rules_of("join", drive),
            vec![("PQ106", 1), ("PQ106", 2), ("PQ106", 3)]
        );
        assert_eq!(
            rules_of("core", drive),
            vec![("PQ106", 1), ("PQ106", 2), ("PQ106", 3)]
        );
        assert!(rules_of("mpc", drive).is_empty());
        assert!(rules_of("faults", drive).is_empty());
    }

    #[test]
    fn metrics_emission_flagged_outside_mpc_and_metrics() {
        let emit = "metrics::emit(&event);\n";
        assert_eq!(rules_of("join", emit), vec![("PQ107", 1)]);
        assert_eq!(rules_of("core", emit), vec![("PQ107", 1)]);
        assert!(rules_of("mpc", emit).is_empty());
        assert!(rules_of("metrics", emit).is_empty());
    }

    #[test]
    fn page_io_fabrication_flagged_outside_store_and_data() {
        let touch = "store::touch_page(sid, page, rows);\nlet base = store::alloc_pages(n);\n";
        assert_eq!(rules_of("join", touch), vec![("PQ109", 1), ("PQ109", 2)]);
        assert_eq!(rules_of("core", touch), vec![("PQ109", 1), ("PQ109", 2)]);
        assert!(rules_of("store", touch).is_empty());
        assert!(rules_of("data", touch).is_empty());
    }

    #[test]
    fn io_ledger_draining_flagged_outside_mpc() {
        let drain = "let d = store::drain_io();\nstore::reset_io();\n";
        assert_eq!(rules_of("join", drain), vec![("PQ109", 1), ("PQ109", 2)]);
        assert_eq!(rules_of("core", drain), vec![("PQ109", 1), ("PQ109", 2)]);
        assert!(rules_of("mpc", drain).is_empty());
        assert!(rules_of("store", drain).is_empty());
    }

    #[test]
    fn io_metrics_emission_flagged_outside_mpc_and_metrics() {
        let emit = "metrics::emit_io(d.reads, d.misses, d.evictions);\n";
        assert_eq!(rules_of("join", emit), vec![("PQ109", 1)]);
        assert_eq!(rules_of("store", emit), vec![("PQ109", 1)]);
        assert!(rules_of("mpc", emit).is_empty());
        assert!(rules_of("metrics", emit).is_empty());
        // The PQ107 token `metrics::emit` must not also fire on the
        // ident-distinct `metrics::emit_io`.
        assert!(!rules_of("join", emit).contains(&("PQ107", 1)));
    }

    #[test]
    fn plan_cache_and_tenant_ledger_confined_to_serve() {
        let src = "let mut cache = PlanCache::new(budget);\nlet t = TenantLedger::default();\n";
        assert_eq!(rules_of("join", src), vec![("PQ110", 1), ("PQ110", 2)]);
        assert_eq!(rules_of("core", src), vec![("PQ110", 1), ("PQ110", 2)]);
        assert!(rules_of("serve", src).is_empty());
    }

    #[test]
    fn serve_report_consumption_allowed_everywhere() {
        let src = "let report = parqp_serve::replay(&cfg)?;\n\
                   let rate = report.cache.hit_rate();\n\
                   let p99 = report.l_percentile(99);\n";
        assert!(rules_of("core", src).is_empty());
        assert!(rules_of("bench", src).is_empty());
    }

    #[test]
    fn serve_is_side_channel_scoped() {
        assert_eq!(rules_of("serve", "use std::fs;\n"), vec![("PQ103", 1)]);
        assert_eq!(rules_of("serve", "use std::env;\n"), vec![("PQ103", 1)]);
    }

    #[test]
    fn obs_emission_confined_to_serve_and_obs() {
        let src =
            "obs::emit(&q);\nlet _g = obs::install(rec);\nlet (s, r) = obs::capture(cfg, f);\n";
        assert_eq!(
            rules_of("join", src),
            vec![("PQ111", 1), ("PQ111", 2), ("PQ111", 3)]
        );
        assert_eq!(
            rules_of("core", src),
            vec![("PQ111", 1), ("PQ111", 2), ("PQ111", 3)]
        );
        assert!(rules_of("serve", src).is_empty());
        assert!(rules_of("obs", src).is_empty());
    }

    #[test]
    fn observation_fabrication_confined_to_serve_and_obs() {
        let src =
            "let q = QueryObs { serial, tick, ..dflt };\nlet rec = SeriesRecorder::new(cfg);\n";
        assert_eq!(rules_of("join", src), vec![("PQ111", 1), ("PQ111", 2)]);
        assert_eq!(rules_of("core", src), vec![("PQ111", 1), ("PQ111", 2)]);
        assert!(rules_of("serve", src).is_empty());
        assert!(rules_of("obs", src).is_empty());
    }

    #[test]
    fn series_consumption_allowed_everywhere() {
        let src = "let (report, series) = parqp_serve::replay_observed(&cfg, window)?;\n\
                   let dash = series.dashboard();\n\
                   let gate = parqp_obs::evaluate(&rules, &series).gate();\n";
        assert!(rules_of("core", src).is_empty());
        assert!(rules_of("bench", src).is_empty());
    }

    #[test]
    fn obs_is_side_channel_scoped() {
        assert_eq!(rules_of("obs", "use std::fs;\n"), vec![("PQ103", 1)]);
        assert_eq!(rules_of("obs", "use std::env;\n"), vec![("PQ103", 1)]);
    }

    #[test]
    fn paged_scans_allowed_everywhere() {
        let src = "let scan = RouteScan::new(sid, part);\n\
                   let mut io = parqp_data::paged::IoCursor::new(sid);\n\
                   let region = parqp_data::paged::IoRegion::new(words);\n\
                   let _g = parqp_data::paged::install(cfg);\n";
        assert!(rules_of("join", src).is_empty());
        assert!(rules_of("sort", src).is_empty());
        assert!(rules_of("core", src).is_empty());
    }

    #[test]
    fn metrics_announce_allowed_everywhere() {
        let src = "metrics::announce(&metrics::PaperBound::tuples(\"hash_join\", l, 1));\n\
                   let (reg, out) = metrics::capture(run);\n";
        assert!(rules_of("join", src).is_empty());
        assert!(rules_of("core", src).is_empty());
    }

    #[test]
    fn fault_plan_installation_allowed_everywhere() {
        let src = "let (log, out) = faults::capture(plan, strategy, run);\n\
                   let _guard = faults::install(plan, strategy);\n";
        assert!(rules_of("core", src).is_empty());
        assert!(rules_of("bench", src).is_empty());
    }

    #[test]
    fn trace_spans_allowed_everywhere() {
        let src = "let _span = trace::span(\"hypercube/shuffle\");\n";
        assert!(rules_of("join", src).is_empty());
        assert!(rules_of("sort", src).is_empty());
    }

    #[test]
    fn accounting_construction_flagged_outside_mpc() {
        assert_eq!(
            rules_of("join", "let r = RoundStats::zero(p);\n"),
            vec![("PQ104", 1)]
        );
        assert_eq!(
            rules_of(
                "join",
                "let r = LoadReport { servers: p, rounds: vec![] };\n"
            ),
            vec![("PQ104", 1)]
        );
        assert!(rules_of("mpc", "let r = RoundStats::zero(p);\n").is_empty());
    }

    #[test]
    fn load_report_return_type_not_flagged() {
        assert!(rules_of("join", "fn pad(r: LoadReport, p: usize) -> LoadReport {\n").is_empty());
        assert!(rules_of("join", "let l: LoadReport = run.report;\n").is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_ignored() {
        let src = "// HashMap would be wrong here\nlet s = \"std::thread\";\n";
        assert!(rules_of("mpc", src).is_empty());
    }

    #[test]
    fn malformed_allow_reported() {
        let v = rules_of("join", "let x = 1; // parqp-lint: allow(PQ1)\n");
        assert_eq!(v, vec![("PQ000", 1)]);
    }

    #[test]
    fn valid_rule_ids() {
        assert!(is_valid_rule_id("PQ001"));
        assert!(is_valid_rule_id("PQ301"));
        assert!(!is_valid_rule_id("PQ1"));
        assert!(!is_valid_rule_id("pq001"));
        assert!(!is_valid_rule_id("PQ00a"));
    }
}
