//! Property tests for the sorting algorithms: output is a sorted
//! permutation of the input for arbitrary inputs, cluster sizes and
//! fan-outs, with range-disjoint partitions.

use parqp_mpc::Cluster;
use parqp_sort::{multiround_sort, psrs, psrs_by};
use parqp_testkit::prelude::*;

fn assert_sorted_partitions(items: &[u64], parts: &[Vec<u64>]) {
    let flat: Vec<u64> = parts.concat();
    let mut expect = items.to_vec();
    expect.sort_unstable();
    assert_eq!(flat, expect, "must be a sorted permutation");
    for w in parts.windows(2) {
        if let (Some(&hi), Some(&lo)) = (w[0].last(), w[1].first()) {
            assert!(hi <= lo, "partitions must be range-ordered");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn psrs_sorts_anything(
        items in collection::vec(any::<u64>(), 0..800),
        p in 1usize..20,
    ) {
        let mut cluster = Cluster::new(p);
        let local = cluster.scatter(items.clone());
        let parts = psrs(&mut cluster, local);
        assert_sorted_partitions(&items, &parts);
        prop_assert!(cluster.report().num_rounds() <= 2);
    }

    #[test]
    fn psrs_handles_duplicate_heavy_input(
        distinct in 1u64..5,
        n in 1usize..600,
        p in 1usize..12,
    ) {
        let items: Vec<u64> = (0..n as u64).map(|i| i % distinct).collect();
        let mut cluster = Cluster::new(p);
        let local = cluster.scatter(items.clone());
        let parts = psrs(&mut cluster, local);
        assert_sorted_partitions(&items, &parts);
    }

    #[test]
    fn multiround_sorts_anything(
        items in collection::vec(any::<u64>(), 0..800),
        p in 1usize..20,
        fanout in 2usize..8,
    ) {
        let mut cluster = Cluster::new(p);
        let local = cluster.scatter(items.clone());
        let parts = multiround_sort(&mut cluster, local, fanout);
        let flat: Vec<u64> = parts.concat();
        let mut expect = items.clone();
        expect.sort_unstable();
        prop_assert_eq!(flat, expect);
        // Round formula: 3 per level, ⌈log_f p⌉ levels.
        let levels = if p <= 1 { 0 } else { (p as f64).log(fanout as f64).ceil() as usize };
        prop_assert!(cluster.report().num_rounds() <= 3 * levels.max(1));
    }

    #[test]
    fn psrs_by_keeps_payloads(
        pairs in collection::vec((any::<u32>(), any::<u32>()), 0..500),
        p in 1usize..10,
    ) {
        let items: Vec<(u64, u64)> =
            pairs.iter().map(|&(k, v)| (u64::from(k), u64::from(v))).collect();
        let mut cluster = Cluster::new(p);
        let local = cluster.scatter(items.clone());
        let parts = psrs_by(&mut cluster, local, |t| t.0);
        let flat: Vec<(u64, u64)> = parts.concat();
        // Keys sorted.
        prop_assert!(flat.windows(2).all(|w| w[0].0 <= w[1].0));
        // Multiset of pairs preserved.
        let mut a = flat;
        let mut b = items;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
