//! Fixture: panic-surface counting (rule PQ201).

pub fn first(v: &[u64]) -> u64 {
    v.first().copied().unwrap()
}

pub fn second(v: &[u64]) -> u64 {
    v.get(1).copied().expect("two elements")
}

pub fn third(v: &[u64]) -> u64 {
    if v.len() < 3 {
        panic!("too short");
    }
    v[2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwraps_do_not_count() {
        assert_eq!(super::first(&[1, 2, 3]), [1u64][0]);
        "7".parse::<u64>().unwrap();
    }
}
