//! E04 — two-way joins under arbitrary skew (slides 29–31).
//!
//! Sweeps Zipf skew from none to extreme and compares the parallel hash
//! join (which degrades toward `L = IN`), the heavy/light skew join and
//! the sort-based join (both `O(√(OUT/p) + IN/p)`) against the paper's
//! bound.

use crate::table::fmt;
use crate::Table;
use parqp::data::generate;
use parqp::join::twoway;
use parqp_data::Relation;

/// Run E04.
pub fn run() -> Vec<Table> {
    let p = 16; // keep p well below N^{1/3}·… so PSRS's p² sample term stays small
    let n = 30_000;
    let mut t = Table::new(
        format!("E04 (slides 29–31): skew sweep — |R| = |S| = {n}, p = {p}"),
        &[
            "workload",
            "OUT",
            "hash L",
            "skew L",
            "sort L",
            "paper √(OUT/p)+IN/p",
        ],
    );
    let cases: Vec<(String, Relation, Relation)> = vec![
        (
            "no skew".into(),
            generate::key_unique_pairs(n, 1, 1 << 40, 1),
            generate::key_unique_pairs(n, 0, 1 << 40, 2),
        ),
        (
            "zipf 0.8".into(),
            generate::zipf_pairs(n, n / 4, 0.8, 1, 3),
            generate::zipf_pairs(n, n / 4, 0.8, 0, 4),
        ),
        (
            "zipf 1.2".into(),
            generate::zipf_pairs(n, n / 4, 1.2, 1, 5),
            generate::zipf_pairs(n, n / 4, 1.2, 0, 6),
        ),
        (
            "one heavy key".into(),
            generate::planted_heavy_pairs(n, &[7], n / 4, 1, 1 << 30, 7),
            generate::planted_heavy_pairs(n, &[7], n / 4, 0, 1 << 30, 8),
        ),
        (
            "extreme".into(),
            generate::constant_key_pairs(n / 10, 7, 1),
            generate::constant_key_pairs(n / 10, 7, 0),
        ),
    ];
    for (name, r, s) in &cases {
        let out = twoway::output_size(r, 1, s, 0);
        let input = (r.len() + s.len()) as f64;
        let hash = twoway::hash_join(r, 1, s, 0, p, 42);
        let skew = twoway::skew_join(r, 1, s, 0, p, 42);
        let sort = twoway::sort_merge_join(r, 1, s, 0, p, 42);
        let bound = (out as f64 / p as f64).sqrt() + input / p as f64;
        t.row(vec![
            name.clone(),
            out.to_string(),
            hash.report.max_load_tuples().to_string(),
            skew.report.max_load_tuples().to_string(),
            sort.report.max_load_tuples().to_string(),
            fmt(bound),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn skew_resilient_wins_under_extreme_skew() {
        let t = &super::run()[0];
        let extreme = t.rows.last().expect("rows");
        let hash: f64 = extreme[2].parse().expect("hash L");
        let skew: f64 = extreme[3].parse().expect("skew L");
        let sort: f64 = extreme[4].parse().expect("sort L");
        let bound: f64 = extreme[5].parse().expect("bound");
        assert!(
            skew < hash / 2.0,
            "skew join must beat hash join: {skew} vs {hash}"
        );
        assert!(
            sort < hash / 2.0,
            "sort join must beat hash join: {sort} vs {hash}"
        );
        assert!(
            skew < 6.0 * bound,
            "skew join within a constant of the bound"
        );
        // Without skew, all three are near IN/p.
        let no_skew = &t.rows[0];
        let h0: f64 = no_skew[2].parse().expect("hash L");
        let b0: f64 = no_skew[5].parse().expect("bound");
        assert!(h0 < 2.5 * b0);
    }
}
