//! Fixture: driving the shared-plan cache and fabricating a tenant
//! ledger from outside the serving layer (PQ110).

use parqp_serve::cache::{BuildCost, PlanCache};

pub fn poison_cache(parts: Vec<parqp_data::Relation>) -> u64 {
    let mut cache = PlanCache::new(1_000_000);
    let key = parqp_serve::cache::CacheKey {
        template: 0,
        group: 0,
        shares: 4,
    };
    cache.insert(key, parts, BuildCost::default(), 0);
    cache.stats().hits
}

pub struct TenantLedger {
    pub served: u64,
}

pub fn forge_tenant_counters() -> TenantLedger {
    TenantLedger { served: 9000 }
}
