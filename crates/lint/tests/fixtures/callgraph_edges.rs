//! Call-graph resolution edge cases: a method name defined on two
//! types (the union must include the effectful one), a free fn
//! shadowing a std name (must bind to the local definition), and a
//! closure nested inside the worker closure.

pub struct Gauge;
impl Gauge {
    fn tick(&self) {
        metrics::emit(1);
    }
}

pub struct Counter;
impl Counter {
    fn tick(&self) -> u64 {
        7
    }
}

/// Shadows `std::mem::swap` by bare name: the local definition (which
/// opens a thread-local trace span) must win over any std-pure guess.
fn swap(a: u64, b: u64) -> (u64, u64) {
    let _guard = trace::span("swap");
    (b, a)
}

pub fn edge_phase(cluster: &Cluster, parts: Vec<Vec<u64>>) -> Vec<u64> {
    cluster.map(parts, |_sid, part| {
        let scaled: Vec<u64> = part.iter().map(|v| v.wrapping_mul(3)).collect();
        let g = Gauge;
        g.tick();
        let (x, _y) = swap(scaled.len() as u64, 2);
        x
    })
}
