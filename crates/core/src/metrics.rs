//! Bound-adherence metrics over the named [`observe`](crate::observe)
//! experiments: the `parqp metrics` subcommand and the CI perf gate.
//!
//! Each experiment is run under an installed
//! [`parqp_mpc::metrics`] registry at every cluster size in
//! [`METRICS_POINTS`]. The algorithms announce their paper bound (the
//! predicted per-server load `L` and round count) on the way in; the
//! cluster feeds the registry the same event stream the trace sees; and
//! the resulting [`MetricsReport`] carries, per `experiment/p` point,
//! the measured `L`, the round count, and the **bound ratio**
//! `measured L / predicted L` — the number the tutorial's theorems say
//! should hover just above 1.
//!
//! Reports serialize to the `parqp-bench-metrics/v1` JSON schema
//! (`BENCH_parqp.json`, `results/bench_baseline.json`). [`compare`]
//! implements the regression gate: `L`, `rounds` and `bound_ratio` must
//! match the baseline exactly (every run of a fixed seed is
//! deterministic); `wall_ns` is checked within a ±30% budget and only
//! when both sides actually measured it, so a committed baseline with
//! `wall_ns = 0` gates byte-exactly. The page-IO ledger (`io_reads`,
//! `io_hit_rate`) follows the same back-compat rule: baselines written
//! before the paged store existed parse as 0 and are skipped by the
//! gate until regenerated.
//!
//! Wall-clock never enters this crate: collection is deterministic
//! unless the caller supplies a clock (`parqp-bench` passes
//! `parqp_testkit::bench::time_ns`, the workspace's one sanctioned
//! timing site).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use parqp_metrics as metrics;

/// Cluster sizes every experiment is measured at: a non-cube, a cube
/// (`3³`, exercising HyperCube's integer shares), and the CI default.
pub const METRICS_POINTS: &[usize] = &[8, 27, 64];

/// JSON schema tag of [`to_json`] output.
pub const SCHEMA: &str = "parqp-bench-metrics/v1";

/// Measured metrics of one `experiment/p` point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentPoint {
    /// Measured maximum per-server load, in the unit of the
    /// experiment's announced bound (tuples for joins and sorts, words
    /// for matmul).
    pub l: u64,
    /// Rounds the cluster ran.
    pub rounds: u64,
    /// `measured L / predicted L` against the primary announced bound,
    /// rounded to 4 decimals (0 when nothing was announced).
    pub bound_ratio: f64,
    /// Wall-clock nanoseconds for the run; 0 when collected without a
    /// clock (the deterministic mode the committed baseline uses).
    pub wall_ns: u64,
    /// Wall-clock nanoseconds for the same run under
    /// `ExecMode::Parallel` ([`collect_dual`]); 0 when unmeasured.
    /// Pre-parallel baselines omit the field and parse as 0, so the
    /// gate only budgets it once both sides measured it.
    pub wall_par_ns: u64,
    /// Total logical page reads charged by the paged store's buffer
    /// pools across the run (collection installs a default-config
    /// store, so every point measures IO). Pre-store baselines omit
    /// the field and parse as 0, which [`compare`] treats as
    /// unmeasured.
    pub io_reads: u64,
    /// Buffer-pool hit rate `1 − io_misses/io_reads`, rounded to 4
    /// decimals; 0 when no paged scan ran.
    pub io_hit_rate: f64,
    /// Worst per-round skew `L_max / L_mean` (in-memory only; not part
    /// of the v1 JSON schema, so parsed reports carry 0 here).
    pub skew: f64,
}

/// Measured serving metrics of one `parqp serve` workload preset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServePoint {
    /// Queries served per 1000 logical ticks.
    pub throughput: u64,
    /// 99th-percentile per-query load `L` in tuples (nearest rank).
    pub p99_l: u64,
    /// Plan-cache hit rate `hits / (hits + misses)`, rounded to 4
    /// decimals; 0 when the preset disables the cache.
    pub cache_hit_rate: f64,
}

/// SLO verdict of one serve preset's window series, evaluated against
/// the committed [`parqp_obs::SloRules::serve_steady`] objectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPoint {
    /// Windows in the recorded series ([`SLO_WINDOW_TICKS`] ticks each).
    pub windows: u64,
    /// Burning windows summed across all enabled rules.
    pub burned: u64,
    /// Worst per-window p99 load `L` (tuples, log₂-bucket sketch).
    pub p99_l_worst: u64,
    /// Minimum per-window cache hit rate over windows with lookups,
    /// rounded to 4 decimals (1 when the preset never looks up).
    pub hit_rate_min: f64,
}

/// Metrics of every experiment × cluster-size point, keyed
/// `"<experiment>/p<P>"`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsReport {
    /// The seed every experiment ran under.
    pub seed: u64,
    /// Points in key order (`BTreeMap`, so serialization is canonical).
    pub experiments: BTreeMap<String, ExperimentPoint>,
    /// Serving-workload points keyed `"<preset>/p<P>"`. Empty in
    /// baselines written before `parqp serve` existed; [`to_json`]
    /// omits the section entirely then, and [`compare`] treats an
    /// empty baseline section as unmeasured.
    pub serve: BTreeMap<String, ServePoint>,
    /// SLO verdicts per serve preset, keyed like [`serve`](Self::serve).
    /// Same back-compat rule: omitted when empty, skipped by the gate
    /// until the baseline is regenerated.
    pub slo: BTreeMap<String, SloPoint>,
}

/// Window width (ticks) of the series behind the [`SloPoint`]s — the
/// same width `parqp dash` and the CI SLO gate default to.
pub const SLO_WINDOW_TICKS: u64 = 8;

/// The `parqp serve` workload presets measured by [`collect`], keyed by
/// the `"<preset>/p<P>"` name they get in the report: a steady cached
/// stream, the same stream with the cache disabled (cold), and the
/// cached stream under the default fault plan.
pub fn serve_presets(seed: u64) -> Vec<(&'static str, parqp_serve::ServeConfig)> {
    use parqp_serve::{FaultSetup, ServeConfig};
    let steady = ServeConfig {
        servers: 8,
        tenants: 4,
        templates: 3,
        groups: 8,
        ticks: 48,
        seed,
        cache_budget: 120_000,
        ..ServeConfig::default()
    };
    vec![
        ("steady/p8", steady.clone()),
        (
            "cold/p8",
            ServeConfig {
                cache_budget: 0,
                ..steady.clone()
            },
        ),
        (
            "faulted/p8",
            ServeConfig {
                faults: Some(FaultSetup::default()),
                ..steady
            },
        ),
    ]
}

/// Collect metrics for every experiment at every [`METRICS_POINTS`]
/// size, deterministically (no wall-clock).
pub fn collect(seed: u64) -> Result<MetricsReport, String> {
    collect_with(seed, None)
}

/// [`collect`], timing each run with `clock` (monotonic nanoseconds)
/// when one is supplied.
pub fn collect_with(seed: u64, clock: Option<&dyn Fn() -> u64>) -> Result<MetricsReport, String> {
    let mut experiments = BTreeMap::new();
    for e in crate::observe::EXPERIMENTS {
        for &p in METRICS_POINTS {
            let t0 = clock.map(|c| c());
            // Fresh default-config paged store per point: the cluster
            // drains its IO into the registry, so every point carries
            // the page-IO ledger beside the communication ledger.
            let _store = parqp_data::paged::install(parqp_data::paged::StoreConfig::default());
            let (registry, run) =
                metrics::capture(|| crate::observe::run_experiment_full(e.name, p, seed));
            run?;
            let wall_ns = match (clock, t0) {
                (Some(c), Some(t0)) => c().saturating_sub(t0),
                _ => 0,
            };
            let unit = registry.primary_bound().map(|b| b.unit).unwrap_or_default();
            let point = ExperimentPoint {
                l: registry.load_max(unit),
                rounds: registry.rounds(),
                bound_ratio: registry
                    .bound_ratio()
                    .map_or(0.0, |r| (r * 10_000.0).round() / 10_000.0),
                wall_ns,
                wall_par_ns: 0,
                io_reads: registry.io_reads(),
                io_hit_rate: (registry.io_hit_rate() * 10_000.0).round() / 10_000.0,
                skew: registry.max_skew_ratio(),
            };
            experiments.insert(format!("{}/p{p}", e.name), point);
        }
    }
    let mut serve = BTreeMap::new();
    let mut slo = BTreeMap::new();
    let rules = parqp_obs::SloRules::serve_steady();
    for (name, cfg) in serve_presets(seed) {
        // One observed replay feeds both the serve row and the SLO
        // verdict (replay + replay_observed would double the work and
        // the two must agree anyway — the series tiles the report).
        let (report, series) = parqp_serve::replay_observed(&cfg, SLO_WINDOW_TICKS)?;
        serve.insert(
            name.to_string(),
            ServePoint {
                throughput: report.throughput_per_kticks(),
                p99_l: report.l_percentile(99),
                cache_hit_rate: (report.cache.hit_rate() * 10_000.0).round() / 10_000.0,
            },
        );
        let verdict = rules.evaluate(&series);
        slo.insert(
            name.to_string(),
            SloPoint {
                windows: series.windows.len() as u64,
                burned: verdict.outcomes.iter().map(|o| o.burned.len() as u64).sum(),
                p99_l_worst: series.p99_l_worst(),
                hit_rate_min: (series.hit_rate_min() * 10_000.0).round() / 10_000.0,
            },
        );
    }
    Ok(MetricsReport {
        seed,
        experiments,
        serve,
        slo,
    })
}

/// [`collect_with`] a clock, then re-run every point under
/// [`parqp_mpc::ExecMode::Parallel`] with `workers` workers (0 = all
/// cores) and record the parallel wall-clock in `wall_par_ns`.
///
/// The parallel pass must reproduce the serial `L`, `rounds` and
/// `bound_ratio` exactly — any divergence is an error, not a report:
/// the two columns are only comparable if they measured the same
/// computation.
pub fn collect_dual(
    seed: u64,
    clock: &dyn Fn() -> u64,
    workers: usize,
) -> Result<MetricsReport, String> {
    let mut report = collect_with(seed, Some(clock))?;
    let _guard = parqp_mpc::exec::install(parqp_mpc::ExecMode::Parallel { workers });
    for e in crate::observe::EXPERIMENTS {
        for &p in METRICS_POINTS {
            let t0 = clock();
            let _store = parqp_data::paged::install(parqp_data::paged::StoreConfig::default());
            let (registry, run) =
                metrics::capture(|| crate::observe::run_experiment_full(e.name, p, seed));
            run?;
            let wall_par_ns = clock().saturating_sub(t0);
            let key = format!("{}/p{p}", e.name);
            let Some(pt) = report.experiments.get_mut(&key) else {
                return Err(format!("{key}: missing from the serial pass"));
            };
            let unit = registry.primary_bound().map(|b| b.unit).unwrap_or_default();
            let ratio = registry
                .bound_ratio()
                .map_or(0.0, |r| (r * 10_000.0).round() / 10_000.0);
            if registry.load_max(unit) != pt.l
                || registry.rounds() != pt.rounds
                || (ratio - pt.bound_ratio).abs() > 1e-9
                || registry.io_reads() != pt.io_reads
            {
                return Err(format!(
                    "{key}: parallel run diverged from serial \
                     (L {} vs {}, rounds {} vs {}, io_reads {} vs {})",
                    registry.load_max(unit),
                    pt.l,
                    registry.rounds(),
                    pt.rounds,
                    registry.io_reads(),
                    pt.io_reads
                ));
            }
            pt.wall_par_ns = wall_par_ns;
        }
    }
    Ok(report)
}

/// Serialize to the `parqp-bench-metrics/v1` JSON document. Key order
/// and float formatting are canonical, so equal reports are
/// byte-identical.
pub fn to_json(report: &MetricsReport) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(s, "  \"seed\": {},", report.seed);
    let _ = writeln!(s, "  \"experiments\": {{");
    let last = report.experiments.len().saturating_sub(1);
    for (i, (key, pt)) in report.experiments.iter().enumerate() {
        let _ = write!(
            s,
            "    \"{key}\": {{\"L\": {}, \"rounds\": {}, \"bound_ratio\": {:.4}, \
             \"wall_ns\": {}, \"wall_par_ns\": {}, \"io_reads\": {}, \"io_hit_rate\": {:.4}}}",
            pt.l,
            pt.rounds,
            pt.bound_ratio,
            pt.wall_ns,
            pt.wall_par_ns,
            pt.io_reads,
            pt.io_hit_rate
        );
        s.push_str(if i == last { "\n" } else { ",\n" });
    }
    s.push_str("  }");
    // The serve section is omitted (not emitted empty) so documents
    // written before `parqp serve` existed stay canonical round-trips.
    if !report.serve.is_empty() {
        s.push_str(",\n  \"serve\": {\n");
        let last = report.serve.len().saturating_sub(1);
        for (i, (key, pt)) in report.serve.iter().enumerate() {
            let _ = write!(
                s,
                "    \"{key}\": {{\"throughput\": {}, \"p99_l\": {}, \"cache_hit_rate\": {:.4}}}",
                pt.throughput, pt.p99_l, pt.cache_hit_rate
            );
            s.push_str(if i == last { "\n" } else { ",\n" });
        }
        s.push_str("  }");
    }
    // The slo section follows the serve rule: omitted when empty so
    // older documents stay canonical round-trips.
    if !report.slo.is_empty() {
        s.push_str(",\n  \"slo\": {\n");
        let last = report.slo.len().saturating_sub(1);
        for (i, (key, pt)) in report.slo.iter().enumerate() {
            let _ = write!(
                s,
                "    \"{key}\": {{\"windows\": {}, \"burned\": {}, \"p99_l_worst\": {}, \
                 \"hit_rate_min\": {:.4}}}",
                pt.windows, pt.burned, pt.p99_l_worst, pt.hit_rate_min
            );
            s.push_str(if i == last { "\n" } else { ",\n" });
        }
        s.push_str("  }");
    }
    s.push_str("\n}\n");
    s
}

/// Parse a document [`to_json`] wrote (line-oriented, like the lint's
/// TOML reader: enough for the schema we emit, not a general parser).
pub fn from_json(src: &str) -> Result<MetricsReport, String> {
    let mut report = MetricsReport::default();
    let mut saw_schema = false;
    for line in src.lines() {
        let t = line.trim().trim_end_matches(',');
        if let Some(rest) = t.strip_prefix("\"schema\":") {
            let got = rest.trim().trim_matches('"');
            if got != SCHEMA {
                return Err(format!("unsupported schema {got:?} (want {SCHEMA:?})"));
            }
            saw_schema = true;
        } else if let Some(rest) = t.strip_prefix("\"seed\":") {
            report.seed = rest
                .trim()
                .parse()
                .map_err(|e| format!("bad seed value: {e}"))?;
        } else if t.starts_with('"') && t.contains("\"throughput\":") {
            // A serve-preset entry (absent in pre-serve baselines, which
            // simply leave the map empty).
            let key = t
                .split('"')
                .nth(1)
                .ok_or_else(|| format!("malformed serve entry: {t}"))?;
            let point = ServePoint {
                throughput: field(t, "throughput")?
                    .parse()
                    .map_err(|e| format!("{key} throughput: {e}"))?,
                p99_l: field(t, "p99_l")?
                    .parse()
                    .map_err(|e| format!("{key} p99_l: {e}"))?,
                cache_hit_rate: field(t, "cache_hit_rate")?
                    .parse()
                    .map_err(|e| format!("{key} cache_hit_rate: {e}"))?,
            };
            report.serve.insert(key.to_string(), point);
        } else if t.starts_with('"') && t.contains("\"p99_l_worst\":") {
            // An slo-verdict entry (absent in pre-obs baselines).
            let key = t
                .split('"')
                .nth(1)
                .ok_or_else(|| format!("malformed slo entry: {t}"))?;
            let point = SloPoint {
                windows: field(t, "windows")?
                    .parse()
                    .map_err(|e| format!("{key} windows: {e}"))?,
                burned: field(t, "burned")?
                    .parse()
                    .map_err(|e| format!("{key} burned: {e}"))?,
                p99_l_worst: field(t, "p99_l_worst")?
                    .parse()
                    .map_err(|e| format!("{key} p99_l_worst: {e}"))?,
                hit_rate_min: field(t, "hit_rate_min")?
                    .parse()
                    .map_err(|e| format!("{key} hit_rate_min: {e}"))?,
            };
            report.slo.insert(key.to_string(), point);
        } else if t.starts_with('"') && t.contains("\"L\":") {
            let key = t
                .split('"')
                .nth(1)
                .ok_or_else(|| format!("malformed metrics entry: {t}"))?;
            let point = ExperimentPoint {
                l: field(t, "L")?
                    .parse()
                    .map_err(|e| format!("{key} L: {e}"))?,
                rounds: field(t, "rounds")?
                    .parse()
                    .map_err(|e| format!("{key} rounds: {e}"))?,
                bound_ratio: field(t, "bound_ratio")?
                    .parse()
                    .map_err(|e| format!("{key} bound_ratio: {e}"))?,
                wall_ns: field(t, "wall_ns")?
                    .parse()
                    .map_err(|e| format!("{key} wall_ns: {e}"))?,
                // Absent in pre-parallel baselines: default to unmeasured.
                wall_par_ns: match field(t, "wall_par_ns") {
                    Ok(v) => v.parse().map_err(|e| format!("{key} wall_par_ns: {e}"))?,
                    Err(_) => 0,
                },
                // Absent in pre-store baselines: default to unmeasured.
                io_reads: match field(t, "io_reads") {
                    Ok(v) => v.parse().map_err(|e| format!("{key} io_reads: {e}"))?,
                    Err(_) => 0,
                },
                io_hit_rate: match field(t, "io_hit_rate") {
                    Ok(v) => v.parse().map_err(|e| format!("{key} io_hit_rate: {e}"))?,
                    Err(_) => 0.0,
                },
                skew: 0.0,
            };
            report.experiments.insert(key.to_string(), point);
        }
    }
    if !saw_schema {
        return Err(format!("not a {SCHEMA} document (no schema line)"));
    }
    Ok(report)
}

/// The raw text of one `"name": value` field inside an entry line.
fn field<'a>(entry: &'a str, name: &str) -> Result<&'a str, String> {
    let tag = format!("\"{name}\":");
    let at = entry
        .find(&tag)
        .ok_or_else(|| format!("missing field {name:?} in: {entry}"))?;
    let rest = entry.get(at + tag.len()..).unwrap_or_default();
    Ok(rest.split([',', '}']).next().unwrap_or(rest).trim())
}

/// Fraction by which `wall_ns` may grow over the baseline before the
/// gate fails (±30%; shrinking is never a regression).
pub const WALL_BUDGET: f64 = 0.30;

/// The perf gate: every regression of `current` against `baseline`,
/// empty when the gate passes.
///
/// `L`, `rounds` and `bound_ratio` must match exactly — collection is
/// deterministic at a fixed seed, so any drift is a real behavior
/// change. `wall_ns` is budgeted (±[`WALL_BUDGET`]) and skipped when
/// either side reads 0 (unmeasured).
pub fn compare(baseline: &MetricsReport, current: &MetricsReport) -> Vec<String> {
    let mut out = Vec::new();
    if baseline.seed != current.seed {
        out.push(format!(
            "seed mismatch: baseline {} vs current {}",
            baseline.seed, current.seed
        ));
    }
    for (key, b) in &baseline.experiments {
        let Some(c) = current.experiments.get(key) else {
            out.push(format!("{key}: missing from current run"));
            continue;
        };
        if b.l != c.l {
            out.push(format!("{key}: L changed {} → {}", b.l, c.l));
        }
        if b.rounds != c.rounds {
            out.push(format!("{key}: rounds changed {} → {}", b.rounds, c.rounds));
        }
        if (b.bound_ratio - c.bound_ratio).abs() > 1e-9 {
            out.push(format!(
                "{key}: bound_ratio changed {:.4} → {:.4}",
                b.bound_ratio, c.bound_ratio
            ));
        }
        // The IO ledger is deterministic like L/rounds, but pre-store
        // baselines carry 0 (unmeasured) — gate only once the baseline
        // has been regenerated with a measured ledger.
        if b.io_reads > 0 {
            if b.io_reads != c.io_reads {
                out.push(format!(
                    "{key}: io_reads changed {} → {}",
                    b.io_reads, c.io_reads
                ));
            }
            if (b.io_hit_rate - c.io_hit_rate).abs() > 1e-9 {
                out.push(format!(
                    "{key}: io_hit_rate changed {:.4} → {:.4}",
                    b.io_hit_rate, c.io_hit_rate
                ));
            }
        }
        for (name, bw, cw) in [
            ("wall_ns", b.wall_ns, c.wall_ns),
            ("wall_par_ns", b.wall_par_ns, c.wall_par_ns),
        ] {
            if bw > 0 && cw > 0 {
                let grew = cw as f64 / bw as f64 - 1.0;
                if grew > WALL_BUDGET {
                    out.push(format!(
                        "{key}: {name} grew {bw} → {cw} (+{:.0}%, budget {:.0}%)",
                        grew * 100.0,
                        WALL_BUDGET * 100.0
                    ));
                }
            }
        }
    }
    for key in current.experiments.keys() {
        if !baseline.experiments.contains_key(key) {
            out.push(format!(
                "{key}: not in baseline (regenerate it to admit new points)"
            ));
        }
    }
    // Serving points are deterministic like L/rounds, but a baseline
    // written before `parqp serve` existed carries no section at all —
    // skip the whole family until the baseline is regenerated.
    if !baseline.serve.is_empty() {
        for (key, b) in &baseline.serve {
            let Some(c) = current.serve.get(key) else {
                out.push(format!("serve {key}: missing from current run"));
                continue;
            };
            if b.throughput != c.throughput {
                out.push(format!(
                    "serve {key}: throughput changed {} → {}",
                    b.throughput, c.throughput
                ));
            }
            if b.p99_l != c.p99_l {
                out.push(format!(
                    "serve {key}: p99_l changed {} → {}",
                    b.p99_l, c.p99_l
                ));
            }
            if (b.cache_hit_rate - c.cache_hit_rate).abs() > 1e-9 {
                out.push(format!(
                    "serve {key}: cache_hit_rate changed {:.4} → {:.4}",
                    b.cache_hit_rate, c.cache_hit_rate
                ));
            }
        }
        for key in current.serve.keys() {
            if !baseline.serve.contains_key(key) {
                out.push(format!(
                    "serve {key}: not in baseline (regenerate it to admit new points)"
                ));
            }
        }
    }
    // SLO verdicts are deterministic; pre-obs baselines carry no
    // section and skip the family, like serve.
    if !baseline.slo.is_empty() {
        for (key, b) in &baseline.slo {
            let Some(c) = current.slo.get(key) else {
                out.push(format!("slo {key}: missing from current run"));
                continue;
            };
            if b.windows != c.windows {
                out.push(format!(
                    "slo {key}: windows changed {} → {}",
                    b.windows, c.windows
                ));
            }
            if b.burned != c.burned {
                out.push(format!(
                    "slo {key}: burned windows changed {} → {}",
                    b.burned, c.burned
                ));
            }
            if b.p99_l_worst != c.p99_l_worst {
                out.push(format!(
                    "slo {key}: p99_l_worst changed {} → {}",
                    b.p99_l_worst, c.p99_l_worst
                ));
            }
            if (b.hit_rate_min - c.hit_rate_min).abs() > 1e-9 {
                out.push(format!(
                    "slo {key}: hit_rate_min changed {:.4} → {:.4}",
                    b.hit_rate_min, c.hit_rate_min
                ));
            }
        }
        for key in current.slo.keys() {
            if !baseline.slo.contains_key(key) {
                out.push(format!(
                    "slo {key}: not in baseline (regenerate it to admit new points)"
                ));
            }
        }
    }
    out
}

/// Render a report as an aligned text table, one row per point.
pub fn table(report: &MetricsReport) -> String {
    let mut s = format!(
        "bound-adherence metrics, seed {} ({} points)\n",
        report.seed,
        report.experiments.len()
    );
    s.push_str(
        "experiment              p      L_meas  rounds  bound_ratio   skew       wall  \
         wall(par)   io_reads  io_hit\n",
    );
    for (key, pt) in &report.experiments {
        let (name, p) = key.rsplit_once("/p").unwrap_or((key.as_str(), "?"));
        let ratio = if pt.bound_ratio > 0.0 {
            format!("{:.4}", pt.bound_ratio)
        } else {
            "-".into()
        };
        let ms = |ns: u64| {
            if ns > 0 {
                format!("{:.2} ms", ns as f64 / 1e6)
            } else {
                "-".into()
            }
        };
        let (wall, wall_par) = (ms(pt.wall_ns), ms(pt.wall_par_ns));
        let (io_reads, io_hit) = if pt.io_reads > 0 {
            (pt.io_reads.to_string(), format!("{:.4}", pt.io_hit_rate))
        } else {
            ("-".into(), "-".into())
        };
        let _ = writeln!(
            s,
            "{name:<21} {p:>4} {:>11} {:>7} {ratio:>12} {:>6.2} {wall:>10} {wall_par:>10} \
             {io_reads:>10} {io_hit:>7}",
            pt.l, pt.rounds, pt.skew
        );
    }
    if !report.serve.is_empty() {
        s.push_str("\nserve preset            p  throughput/kticks   p99(L)  cache_hit\n");
        for (key, pt) in &report.serve {
            let (name, p) = key.rsplit_once("/p").unwrap_or((key.as_str(), "?"));
            let _ = writeln!(
                s,
                "{name:<21} {p:>4} {:>18} {:>8} {:>10.4}",
                pt.throughput, pt.p99_l, pt.cache_hit_rate
            );
        }
    }
    if !report.slo.is_empty() {
        s.push_str("\nslo verdict             p    windows   burned  p99(L)worst  hit_rate_min\n");
        for (key, pt) in &report.slo {
            let (name, p) = key.rsplit_once("/p").unwrap_or((key.as_str(), "?"));
            let _ = writeln!(
                s,
                "{name:<21} {p:>4} {:>10} {:>8} {:>12} {:>13.4}",
                pt.windows, pt.burned, pt.p99_l_worst, pt.hit_rate_min
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsReport {
        let mut experiments = BTreeMap::new();
        experiments.insert(
            "psrs/p8".to_string(),
            ExperimentPoint {
                l: 5000,
                rounds: 2,
                bound_ratio: 1.0312,
                wall_ns: 0,
                wall_par_ns: 0,
                io_reads: 0,
                io_hit_rate: 0.0,
                skew: 1.1,
            },
        );
        experiments.insert(
            "matmul-square/p27".to_string(),
            ExperimentPoint {
                l: 108,
                rounds: 3,
                bound_ratio: 1.0,
                wall_ns: 2_000_000,
                wall_par_ns: 1_000_000,
                io_reads: 4096,
                io_hit_rate: 0.875,
                skew: 1.0,
            },
        );
        let mut serve = BTreeMap::new();
        serve.insert(
            "steady/p8".to_string(),
            ServePoint {
                throughput: 1200,
                p99_l: 950,
                cache_hit_rate: 0.7347,
            },
        );
        serve.insert(
            "cold/p8".to_string(),
            ServePoint {
                throughput: 1200,
                p99_l: 950,
                cache_hit_rate: 0.0,
            },
        );
        let mut slo = BTreeMap::new();
        slo.insert(
            "steady/p8".to_string(),
            SloPoint {
                windows: 6,
                burned: 1,
                p99_l_worst: 1024,
                hit_rate_min: 0.5,
            },
        );
        slo.insert(
            "cold/p8".to_string(),
            SloPoint {
                windows: 6,
                burned: 6,
                p99_l_worst: 1024,
                hit_rate_min: 0.0,
            },
        );
        MetricsReport {
            seed: 42,
            experiments,
            serve,
            slo,
        }
    }

    #[test]
    fn json_roundtrip_is_lossless_except_skew() {
        let report = sample();
        let json = to_json(&report);
        let parsed = from_json(&json).expect("own output parses");
        assert_eq!(parsed.seed, report.seed);
        assert_eq!(parsed.experiments.len(), report.experiments.len());
        for (key, pt) in &report.experiments {
            let got = parsed.experiments[key];
            assert_eq!(
                (
                    got.l,
                    got.rounds,
                    got.wall_ns,
                    got.wall_par_ns,
                    got.io_reads
                ),
                (pt.l, pt.rounds, pt.wall_ns, pt.wall_par_ns, pt.io_reads)
            );
            assert!((got.bound_ratio - pt.bound_ratio).abs() < 1e-9);
            assert!((got.io_hit_rate - pt.io_hit_rate).abs() < 1e-9);
            assert_eq!(got.skew, 0.0, "skew is not serialized");
        }
        // Canonical: serializing the parse reproduces the bytes.
        let mut report_no_skew = parsed.clone();
        assert_eq!(to_json(&report_no_skew), json);
        report_no_skew.seed += 1;
        assert_ne!(to_json(&report_no_skew), json);
    }

    #[test]
    fn from_json_accepts_pre_parallel_baselines() {
        // A v1 document written before wall_par_ns existed must parse
        // with the field defaulting to unmeasured.
        let json = to_json(&sample()).replace(", \"wall_par_ns\": 0", "");
        let parsed = from_json(&json).expect("old schema parses");
        assert_eq!(parsed.experiments["psrs/p8"].wall_par_ns, 0);
        // The matmul point still had its own wall_par_ns line intact.
        assert_eq!(
            parsed.experiments["matmul-square/p27"].wall_par_ns,
            1_000_000
        );
    }

    #[test]
    fn from_json_accepts_pre_store_baselines() {
        // A v1 document written before the page-IO ledger existed must
        // parse with both io fields defaulting to unmeasured.
        let json = to_json(&sample())
            .replace(", \"io_reads\": 4096, \"io_hit_rate\": 0.8750", "")
            .replace(", \"io_reads\": 0, \"io_hit_rate\": 0.0000", "");
        assert!(!json.contains("io_reads"), "fields really stripped");
        let parsed = from_json(&json).expect("old schema parses");
        for pt in parsed.experiments.values() {
            assert_eq!(pt.io_reads, 0);
            assert_eq!(pt.io_hit_rate, 0.0);
        }
        // And compare treats the unmeasured baseline as passing against
        // a current run that does measure IO.
        assert!(compare(&parsed, &sample()).is_empty());
    }

    #[test]
    fn json_roundtrip_preserves_the_serve_section() {
        let report = sample();
        let parsed = from_json(&to_json(&report)).expect("own output parses");
        assert_eq!(parsed.serve.len(), 2);
        let steady = parsed.serve["steady/p8"];
        assert_eq!(steady.throughput, 1200);
        assert_eq!(steady.p99_l, 950);
        assert!((steady.cache_hit_rate - 0.7347).abs() < 1e-9);
    }

    #[test]
    fn from_json_accepts_pre_serve_baselines() {
        // A v1 document written before `parqp serve` existed has no
        // serve section at all; it must parse with the map empty, and
        // compare must skip the whole family.
        let mut old = sample();
        old.serve.clear();
        old.slo.clear();
        let json = to_json(&old);
        assert!(!json.contains("serve"), "section really omitted");
        let parsed = from_json(&json).expect("old schema parses");
        assert!(parsed.serve.is_empty());
        assert!(compare(&parsed, &sample()).is_empty());
        // And the omitted section keeps the document canonical.
        assert_eq!(to_json(&parsed), json);
    }

    #[test]
    fn compare_flags_serve_drift_exactly() {
        let baseline = sample();
        let mut current = sample();
        {
            let pt = current.serve.get_mut("steady/p8").expect("point");
            pt.throughput += 10;
            pt.p99_l -= 1;
            pt.cache_hit_rate += 0.1;
        }
        let msgs = compare(&baseline, &current);
        assert_eq!(msgs.len(), 3, "got: {msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("throughput changed")));
        assert!(msgs.iter().any(|m| m.contains("p99_l changed")));
        assert!(msgs.iter().any(|m| m.contains("cache_hit_rate changed")));
        // Missing and extra serve points are flagged once the baseline
        // has a section at all.
        let mut current = sample();
        let moved = current.serve.remove("cold/p8").expect("point");
        current.serve.insert("new/p8".to_string(), moved);
        let msgs = compare(&baseline, &current);
        assert!(msgs.iter().any(|m| m.contains("serve cold/p8: missing")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("serve new/p8: not in baseline")));
    }

    #[test]
    fn json_roundtrip_preserves_the_slo_section() {
        let report = sample();
        let parsed = from_json(&to_json(&report)).expect("own output parses");
        assert_eq!(parsed.slo.len(), 2);
        let steady = parsed.slo["steady/p8"];
        assert_eq!(steady.windows, 6);
        assert_eq!(steady.burned, 1);
        assert_eq!(steady.p99_l_worst, 1024);
        assert!((steady.hit_rate_min - 0.5).abs() < 1e-9);
    }

    #[test]
    fn from_json_accepts_pre_obs_baselines() {
        // A v1 document written before the obs layer existed has no slo
        // section; it parses empty and the gate skips the family.
        let mut old = sample();
        old.slo.clear();
        let json = to_json(&old);
        assert!(!json.contains("slo"), "section really omitted");
        let parsed = from_json(&json).expect("old schema parses");
        assert!(parsed.slo.is_empty());
        assert!(compare(&parsed, &sample()).is_empty());
        assert_eq!(to_json(&parsed), json);
    }

    #[test]
    fn compare_flags_slo_drift_exactly() {
        let baseline = sample();
        let mut current = sample();
        {
            let pt = current.slo.get_mut("steady/p8").expect("point");
            pt.windows += 1;
            pt.burned += 1;
            pt.p99_l_worst *= 2;
            pt.hit_rate_min -= 0.1;
        }
        let msgs = compare(&baseline, &current);
        assert_eq!(msgs.len(), 4, "got: {msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("windows changed")));
        assert!(msgs.iter().any(|m| m.contains("burned windows changed")));
        assert!(msgs.iter().any(|m| m.contains("p99_l_worst changed")));
        assert!(msgs.iter().any(|m| m.contains("hit_rate_min changed")));
        let mut current = sample();
        let moved = current.slo.remove("cold/p8").expect("point");
        current.slo.insert("new/p8".to_string(), moved);
        let msgs = compare(&baseline, &current);
        assert!(msgs.iter().any(|m| m.contains("slo cold/p8: missing")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("slo new/p8: not in baseline")));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(from_json("{}").is_err());
        assert!(from_json("{\"schema\": \"other/v9\"}").is_err());
        let broken = to_json(&sample()).replace("\"L\": 5000", "\"L\": x");
        assert!(from_json(&broken).is_err());
    }

    #[test]
    fn compare_passes_on_identical_reports() {
        assert!(compare(&sample(), &sample()).is_empty());
    }

    #[test]
    fn compare_flags_exact_field_drift() {
        let baseline = sample();
        let mut current = sample();
        let pt = current.experiments.get_mut("psrs/p8").expect("point");
        pt.l += 1;
        pt.rounds += 1;
        pt.bound_ratio += 0.5;
        let msgs = compare(&baseline, &current);
        assert_eq!(msgs.len(), 3, "got: {msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("L changed")));
        assert!(msgs.iter().any(|m| m.contains("rounds changed")));
        assert!(msgs.iter().any(|m| m.contains("bound_ratio changed")));
    }

    #[test]
    fn compare_flags_io_drift_only_when_baseline_measured() {
        let baseline = sample();
        let mut current = sample();
        // Drift on a measured baseline point is exact-gated.
        {
            let pt = current
                .experiments
                .get_mut("matmul-square/p27")
                .expect("point");
            pt.io_reads += 1;
            pt.io_hit_rate -= 0.01;
        }
        let msgs = compare(&baseline, &current);
        assert_eq!(msgs.len(), 2, "got: {msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("io_reads changed")));
        assert!(msgs.iter().any(|m| m.contains("io_hit_rate changed")));
        // The psrs point's baseline is unmeasured (io_reads = 0): a
        // current run that measures IO there is not a regression.
        let mut current = sample();
        current
            .experiments
            .get_mut("psrs/p8")
            .expect("point")
            .io_reads = 123_456;
        assert!(compare(&baseline, &current).is_empty());
    }

    #[test]
    fn compare_budgets_wall_clock_and_skips_unmeasured() {
        let baseline = sample();
        let mut current = sample();
        // +25% is inside the budget.
        current
            .experiments
            .get_mut("matmul-square/p27")
            .expect("point")
            .wall_ns = 2_500_000;
        assert!(compare(&baseline, &current).is_empty());
        // +50% is a regression.
        current
            .experiments
            .get_mut("matmul-square/p27")
            .expect("point")
            .wall_ns = 3_000_000;
        let msgs = compare(&baseline, &current);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("wall_ns grew"));
        // The psrs point has baseline wall_ns = 0: never checked.
        current
            .experiments
            .get_mut("psrs/p8")
            .expect("point")
            .wall_ns = u64::MAX;
        assert_eq!(compare(&baseline, &current).len(), 1);
    }

    #[test]
    fn compare_budgets_parallel_wall_clock_independently() {
        let baseline = sample();
        let mut current = sample();
        // Parallel wall regresses while serial wall stays put.
        current
            .experiments
            .get_mut("matmul-square/p27")
            .expect("point")
            .wall_par_ns = 2_000_000;
        let msgs = compare(&baseline, &current);
        assert_eq!(msgs.len(), 1, "got: {msgs:?}");
        assert!(msgs[0].contains("wall_par_ns grew"));
        // Unmeasured on either side: never checked.
        current
            .experiments
            .get_mut("matmul-square/p27")
            .expect("point")
            .wall_par_ns = 0;
        assert!(compare(&baseline, &current).is_empty());
    }

    #[test]
    fn collect_dual_times_both_modes_and_matches_serial_metrics() {
        use std::cell::Cell;
        let ticks = Cell::new(0u64);
        let clock = move || {
            ticks.set(ticks.get() + 1_000);
            ticks.get()
        };
        let dual = collect_dual(7, &clock, 2).expect("dual collect runs");
        let serial = collect(7).expect("collect runs");
        assert_eq!(dual.experiments.len(), serial.experiments.len());
        for (key, pt) in &dual.experiments {
            let s = serial.experiments[key];
            assert_eq!((pt.l, pt.rounds), (s.l, s.rounds), "{key}");
            assert!((pt.bound_ratio - s.bound_ratio).abs() < 1e-9, "{key}");
            assert_eq!(pt.io_reads, s.io_reads, "{key}: io ledger diverged");
            assert!(pt.wall_ns > 0, "{key}: serial pass untimed");
            assert!(pt.wall_par_ns > 0, "{key}: parallel pass untimed");
        }
    }

    #[test]
    fn compare_flags_missing_and_extra_points() {
        let baseline = sample();
        let mut current = sample();
        let moved = current.experiments.remove("psrs/p8").expect("point");
        current.experiments.insert("new/p8".to_string(), moved);
        let msgs = compare(&baseline, &current);
        assert!(msgs.iter().any(|m| m.contains("psrs/p8: missing")));
        assert!(msgs.iter().any(|m| m.contains("new/p8: not in baseline")));
    }

    #[test]
    fn table_renders_one_row_per_point() {
        let s = sample();
        let t = table(&s);
        // Experiment header (2 lines) + rows, then blank-line-headed
        // serve and slo sections with one row per preset each.
        assert_eq!(
            t.lines().count(),
            2 + s.experiments.len() + 2 + s.serve.len() + 2 + s.slo.len()
        );
        assert!(t.contains("bound_ratio"));
        assert!(t.contains("psrs"));
        assert!(t.contains("serve preset"));
        assert!(t.contains("slo verdict"));
        assert!(t.contains("steady"));
        // Unmeasured wall-clock renders as "-".
        assert!(t.lines().any(|l| l.contains("psrs") && l.ends_with('-')));
    }

    #[test]
    fn collect_covers_every_experiment_and_point() {
        let report = collect(7).expect("collect runs");
        assert_eq!(
            report.experiments.len(),
            crate::observe::EXPERIMENTS.len() * METRICS_POINTS.len()
        );
        for (key, pt) in &report.experiments {
            assert!(pt.l > 0, "{key}: zero load");
            assert!(pt.rounds > 0, "{key}: zero rounds");
            // Every experiment announces a bound. Mean-load bounds give
            // ratios ≥ 1 (measured max ≥ mean); worst-case guarantees
            // (skewhc) may dip just below 1 — but never near zero.
            assert!(
                pt.bound_ratio > 0.5,
                "{key}: ratio {} implausibly low",
                pt.bound_ratio
            );
            assert_eq!(pt.wall_ns, 0, "{key}: clockless collection timed itself");
            assert!(pt.skew >= 1.0, "{key}: skew {} < 1", pt.skew);
            // Collection installs a default store, so every experiment's
            // scans charge the IO ledger.
            assert!(pt.io_reads > 0, "{key}: no page IO measured");
            assert!(
                pt.io_hit_rate > 0.0 && pt.io_hit_rate <= 1.0,
                "{key}: implausible hit rate {}",
                pt.io_hit_rate
            );
        }
        assert_eq!(report.serve.len(), serve_presets(7).len());
        for (key, pt) in &report.serve {
            assert!(pt.throughput > 0, "{key}: zero throughput");
            assert!(pt.p99_l > 0, "{key}: zero p99 load");
        }
        // The cached presets hit, the cold preset cannot.
        assert!(report.serve["steady/p8"].cache_hit_rate > 0.0);
        assert_eq!(report.serve["cold/p8"].cache_hit_rate, 0.0);
        // Every serve preset carries an SLO verdict over the same
        // replay, windowed on the tick clock.
        assert_eq!(
            report.slo.keys().collect::<Vec<_>>(),
            report.serve.keys().collect::<Vec<_>>()
        );
        for (key, pt) in &report.slo {
            let cfg = &serve_presets(7)
                .into_iter()
                .find(|(name, _)| name == key)
                .expect("preset exists")
                .1;
            assert_eq!(pt.windows, cfg.ticks.div_ceil(SLO_WINDOW_TICKS), "{key}");
            assert!(pt.p99_l_worst > 0, "{key}: zero worst p99");
        }
        // The cold preset keeps its cache off all run, so the hit-rate
        // floor never has lookups to judge: its minimum stays 1.
        assert!((report.slo["cold/p8"].hit_rate_min - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clocked_collection_times_runs() {
        // A fake monotonic clock: every read advances 1 µs.
        use std::cell::Cell;
        let ticks = Cell::new(0u64);
        let clock = move || {
            ticks.set(ticks.get() + 1_000);
            ticks.get()
        };
        let report = collect_with(7, Some(&clock)).expect("collect runs");
        assert!(report.experiments.values().all(|pt| pt.wall_ns > 0));
    }
}
