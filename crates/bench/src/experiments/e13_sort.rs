//! E13 — parallel sorting (slides 99–106).
//!
//! Three tables:
//!
//! 1. PSRS load versus `N/p` across `p` (slide 102's `Θ(N/p)` for
//!    `p ≪ N^{1/3}`, with the `p²` sample term visible at large `p`);
//! 2. the multi-round sort's round/fan-out trade-off against the
//!    `Ω(log_L N)` lower bound (slides 104–105);
//! 3. a "sorting in practice"-style summary (slide 106's table reports
//!    external hardware results we cannot re-run; we report the same
//!    columns for our algorithms on the simulator — see DESIGN.md).

use crate::table::fmt;
use crate::Table;
use parqp::model;
use parqp::prelude::*;
use parqp::sort::{multiround_sort, psrs};
use parqp_testkit::Rng;

fn random_items(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Run E13.
pub fn run() -> Vec<Table> {
    let n = 200_000usize;
    let items = random_items(n, 3);

    let mut t1 = Table::new(
        format!(
            "E13a (slide 102): PSRS load vs p, N = {n} (N^(1/3) ≈ {})",
            fmt((n as f64).cbrt())
        ),
        &["p", "measured L", "paper N/p", "ratio", "rounds"],
    );
    for p in [4usize, 8, 16, 32, 64, 128, 256] {
        let mut cluster = Cluster::new(p);
        let local = cluster.scatter(items.clone());
        let parts = psrs(&mut cluster, local);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), n);
        let report = cluster.report();
        let l = report.max_load_tuples() as f64;
        let ideal = model::psrs_load(n as f64, p as f64);
        t1.row(vec![
            p.to_string(),
            fmt(l),
            fmt(ideal),
            format!("{:.2}", l / ideal),
            report.num_rounds().to_string(),
        ]);
    }

    let p = 64usize;
    let small = random_items(64_000, 5);
    let mut t2 = Table::new(
        format!("E13b (slides 104–105): multi-round sort — fan-out vs rounds, N = 64000, p = {p}"),
        &[
            "fan-out f",
            "measured rounds",
            "3·⌈log_f p⌉",
            "measured L",
            "lower bound log_L N",
        ],
    );
    for f in [2usize, 4, 8, 64] {
        let mut cluster = Cluster::new(p);
        let local = cluster.scatter(small.clone());
        let parts = multiround_sort(&mut cluster, local, f);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), small.len());
        let report = cluster.report();
        let levels = (p as f64).log(f as f64).ceil() as usize;
        let l = report.max_load_tuples();
        t2.row(vec![
            f.to_string(),
            report.num_rounds().to_string(),
            (3 * levels).to_string(),
            l.to_string(),
            fmt(model::sort_round_lower_bound(small.len() as f64, l as f64)),
        ]);
    }

    let mut t3 = Table::new(
        "E13c (slide 106 substitute): our sorters, same columns as the practice table",
        &["algorithm", "N", "p", "L (tuples)", "rounds", "C (tuples)"],
    );
    for (name, p, fanout) in [
        ("PSRS", 16usize, 0usize),
        ("PSRS", 64, 0),
        ("multi-round f=4", 64, 4),
        ("multi-round f=8", 64, 8),
    ] {
        let mut cluster = Cluster::new(p);
        let local = cluster.scatter(items.clone());
        if fanout == 0 {
            psrs(&mut cluster, local);
        } else {
            multiround_sort(&mut cluster, local, fanout);
        }
        let r = cluster.report();
        t3.row(vec![
            name.into(),
            n.to_string(),
            p.to_string(),
            r.max_load_tuples().to_string(),
            r.num_rounds().to_string(),
            r.total_tuples().to_string(),
        ]);
    }
    vec![t1, t2, t3]
}

#[cfg(test)]
mod tests {
    #[test]
    fn psrs_load_ratio_near_one_for_small_p() {
        let tables = super::run();
        let t1 = &tables[0];
        for row in &t1.rows[..4] {
            // p ≤ 32 ≪ N^{1/3}·…: ratio close to 1.
            let ratio: f64 = row[3].parse().expect("ratio");
            assert!(ratio < 2.0, "p = {}: PSRS ratio {ratio}", row[0]);
            assert_eq!(row[4], "2", "PSRS is 2 rounds");
        }
    }

    #[test]
    fn fanout_trades_rounds_for_load() {
        let tables = super::run();
        let t2 = &tables[1];
        let r_of = |i: usize| t2.rows[i][1].parse::<usize>().expect("rounds");
        assert!(r_of(0) > r_of(1), "fan-out 2 takes more rounds than 4");
        assert!(r_of(1) > r_of(3), "fan-out 4 takes more rounds than 64");
        // Measured rounds match the 3·⌈log_f p⌉ formula.
        for row in &t2.rows {
            assert_eq!(row[1], row[2], "round formula mismatch: {row:?}");
        }
    }
}
