//! E11 — GYM versus HyperCube: the output-size crossover (slide 78).
//!
//! GYM's load is `(IN + OUT)/p`; the one-round load is `IN/p^{1/τ*}`.
//! GYM wins exactly while `OUT < p^{1−1/τ*}·IN` (minus lower-order
//! terms). We sweep OUT on a chain-3 query by planting uniform degrees
//! `d` (so `OUT ≈ N·d²·…`) and report who wins where, against the
//! predicted crossover.

use crate::table::fmt;
use crate::Table;
use parqp::data::generate;
use parqp::join::{gym, multiway};
use parqp::model;
use parqp::prelude::*;
use parqp_data::Relation;

/// Run E11.
pub fn run() -> Vec<Table> {
    let p = 64usize;
    let n = 8000usize;
    let q = Query::chain(3);
    let tau = model::tau_star(&q); // chain-3: τ* = 2
    let tree = Ghd::join_tree(&q).expect("chains are acyclic");

    let mut t = Table::new(
        format!(
            "E11 (slide 78): GYM vs HyperCube on chain-3, N = {n}, p = {p} — \
             predicted crossover at OUT ≈ p^(1-1/τ*)·IN = {}",
            fmt(model::gym_crossover_output(3.0 * n as f64, p as f64, tau))
        ),
        &[
            "degree d",
            "OUT",
            "GYM L",
            "GYM r",
            "HC L",
            "HC r",
            "winner (L)",
            "paper winner",
        ],
    );
    let input = 3.0 * n as f64;
    let crossover = model::gym_crossover_output(input, p as f64, tau);
    for d in [1usize, 2, 4, 8, 16, 32] {
        // All three relations share keys 0..n/d on both columns, each key
        // appearing d times ⇒ each join multiplies cardinality by ~d.
        let rels: Vec<Relation> = (0..3)
            .map(|i| {
                let mut r = generate::uniform_degree_pairs(n, d, 0, (n / d) as u64, 70 + i);
                // Make column 1 range over the shared key space too.
                r = Relation::from_rows(
                    2,
                    r.iter()
                        .map(|row| [row[0], row[1] % (n / d) as u64])
                        .collect::<Vec<_>>(),
                );
                r
            })
            .collect();
        let out = parqp::query::evaluate(&q, &rels).len();
        let g = gym::gym(&q, &rels, &tree, p, 5, true);
        let h = multiway::hypercube(&q, &rels, p, 5);
        let gl = g.report.max_load_tuples();
        let hl = h.report.max_load_tuples();
        let winner = if gl <= hl { "GYM" } else { "HyperCube" };
        let paper = if (out as f64) < crossover {
            "GYM"
        } else {
            "HyperCube"
        };
        t.row(vec![
            d.to_string(),
            out.to_string(),
            gl.to_string(),
            g.report.num_rounds().to_string(),
            hl.to_string(),
            h.report.num_rounds().to_string(),
            winner.into(),
            paper.into(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn gym_wins_small_out_hypercube_wins_large_out() {
        let t = &super::run()[0];
        let first = &t.rows[0];
        let last = t.rows.last().expect("rows");
        assert_eq!(first[6], "GYM", "small OUT favours GYM: {first:?}");
        assert_eq!(
            last[6], "HyperCube",
            "huge OUT favours the one-round algorithm: {last:?}"
        );
        // The measured winner flips exactly once along the sweep.
        let flips = t.rows.windows(2).filter(|w| w[0][6] != w[1][6]).count();
        assert_eq!(flips, 1, "one crossover expected: {:?}", t.rows);
    }
}
