//! Property tests for the simulator substrate: grid addressing, load
//! conservation, and report composition.

use parqp_mpc::{Cluster, Grid, HashFamily, LoadReport};
use parqp_testkit::prelude::*;

fn arb_dims() -> impl Strategy<Value = Vec<usize>> {
    collection::vec(1usize..5, 1..4)
}

proptest! {
    #[test]
    fn grid_rank_coord_roundtrip(dims in arb_dims()) {
        let g = Grid::new(dims);
        for r in 0..g.len() {
            prop_assert_eq!(g.rank(&g.coords(r)), r);
        }
    }

    #[test]
    fn grid_matching_counts_and_partitions(dims in arb_dims(), fix in 0usize..3) {
        let g = Grid::new(dims.clone());
        let fix = fix.min(dims.len() - 1);
        // Fixing one dimension partitions the grid into disjoint slabs.
        let mut seen = vec![false; g.len()];
        for c in 0..dims[fix] {
            let partial: Vec<Option<usize>> = (0..dims.len())
                .map(|d| if d == fix { Some(c) } else { None })
                .collect();
            let m = g.matching(&partial);
            prop_assert_eq!(m.len(), g.matching_count(&partial));
            for r in m {
                prop_assert!(!seen[r], "slabs must be disjoint");
                seen[r] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "slabs must cover the grid");
    }

    #[test]
    fn exchange_conserves_messages(
        p in 1usize..10,
        msgs in collection::vec((0usize..10, 0u64..100), 0..200),
    ) {
        let mut c = Cluster::new(p);
        let mut ex = c.exchange::<u64>();
        let mut sent = 0u64;
        for &(dest, v) in &msgs {
            ex.send(dest % p, v);
            sent += 1;
        }
        let inboxes = ex.finish();
        let received: usize = inboxes.iter().map(Vec::len).sum();
        prop_assert_eq!(received as u64, sent);
        let report = c.report();
        prop_assert_eq!(report.total_tuples(), sent);
        prop_assert!(report.max_load_tuples() <= sent);
    }

    #[test]
    fn hash_family_stays_in_range(seed in any::<u64>(), k in 1usize..5, buckets in 1usize..50) {
        let h = HashFamily::new(seed, k);
        for i in 0..k {
            for v in 0..200u64 {
                prop_assert!(h.hash(i, v, buckets) < buckets);
            }
        }
    }

    #[test]
    fn parallel_composition_preserves_totals(
        a_rounds in collection::vec(collection::vec(0u64..50, 2), 0..4),
        b_rounds in collection::vec(collection::vec(0u64..50, 3), 0..4),
    ) {
        let mk = |rounds: &[Vec<u64>], servers: usize| LoadReport {
            servers,
            rounds: rounds
                .iter()
                .map(|t| parqp_mpc::RoundStats { tuples: t.clone(), words: t.clone() })
                .collect(),
        };
        let a = mk(&a_rounds, 2);
        let b = mk(&b_rounds, 3);
        let m = LoadReport::parallel(&[a.clone(), b.clone()]);
        prop_assert_eq!(m.servers, 5);
        prop_assert_eq!(m.total_tuples(), a.total_tuples() + b.total_tuples());
        prop_assert_eq!(m.num_rounds(), a.num_rounds().max(b.num_rounds()));
        prop_assert_eq!(
            m.max_load_tuples(),
            a.max_load_tuples().max(b.max_load_tuples())
        );
    }
}
