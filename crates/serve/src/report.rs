//! The replay report: per-query records, per-tenant stats, and the
//! deterministic table / JSONL renderers behind `parqp serve`.
//!
//! Both renderers are pure functions of the report with fixed field
//! order and fixed-precision floats, so byte-identical output is
//! exactly equivalent to equal replays — the property the CI smoke
//! step and the differential suite compare.

use std::fmt::Write as _;
use std::hash::Hasher;

use parqp_data::fasthash::FxHasher;
use parqp_data::paged::IoStats;
use parqp_data::Relation;
use parqp_faults::FaultLog;
use parqp_metrics::MetricsRegistry;
use parqp_mpc::LoadReport;

use crate::cache::CacheStats;
use crate::driver::{percentile, ServeConfig};

/// One served query: where it came from, how the cache treated it, and
/// its exact slice of the cluster ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRecord {
    /// Stream serial (replay order).
    pub serial: u64,
    /// Arrival tick.
    pub tick: u64,
    /// Issuing tenant.
    pub tenant: usize,
    /// Template name.
    pub template: &'static str,
    /// Data-key group.
    pub group: u64,
    /// `"hit"`, `"miss"`, or `"off"` (cache disabled).
    pub cache: &'static str,
    /// The query's load `L` in tuples (max over its rounds).
    pub l: u64,
    /// Ledger rounds attributed to this query (including any recovery
    /// rounds faults appended during it).
    pub rounds: u64,
    /// Total tuples this query's rounds moved.
    pub tuples: u64,
    /// Total words this query's rounds moved.
    pub words: u64,
    /// Output rows produced.
    pub out_rows: u64,
    /// Digest of the canonicalized output.
    pub digest: u64,
}

/// Per-tenant serving stats folded from the query records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant id.
    pub tenant: usize,
    /// Queries served.
    pub served: u64,
    /// Ledger rounds across the tenant's queries.
    pub rounds: u64,
    /// Tuples moved by the tenant's queries.
    pub tuples: u64,
    /// Words moved by the tenant's queries.
    pub words: u64,
    /// Cache hits among the tenant's queries.
    pub hits: u64,
    /// Cache misses among the tenant's queries.
    pub misses: u64,
    /// Median per-query load `L` (nearest rank).
    pub l_p50: u64,
    /// 99th-percentile per-query load `L` (nearest rank).
    pub l_p99: u64,
    /// Queries served per 1000 ticks.
    pub throughput_per_kticks: u64,
}

impl TenantStats {
    /// `hits / (hits + misses)`; 0 when the cache never saw the tenant.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Everything a replay produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The configuration replayed.
    pub config: ServeConfig,
    /// Every served query in replay order.
    pub records: Vec<QueryRecord>,
    /// Per-tenant stats, indexed by tenant id.
    pub tenants: Vec<TenantStats>,
    /// The exact plan-cache ledger.
    pub cache: CacheStats,
    /// The whole-replay `(L, r, C)` ledger.
    pub totals: LoadReport,
    /// The whole-replay page-IO ledger (summed across servers).
    pub io: IoStats,
    /// The captured registry, annotated with `serve.*` gauges.
    pub registry: MetricsRegistry,
    /// What fired, when faults were injected.
    pub fault_log: Option<FaultLog>,
}

/// Digest of a canonicalized relation (same construction as the
/// experiment digests in `parqp::observe`: row length then values, in
/// canonical row order).
pub fn digest_relation(rel: &Relation) -> u64 {
    let mut h = FxHasher::default();
    for row in rel.canonical().iter() {
        h.write_u64(row.len() as u64);
        for &v in row {
            h.write_u64(v);
        }
    }
    h.finish()
}

impl ServeReport {
    /// Total queries served.
    pub fn served(&self) -> u64 {
        self.records.len() as u64
    }

    /// Queries served per 1000 ticks.
    pub fn throughput_per_kticks(&self) -> u64 {
        self.served() * 1000 / self.config.ticks
    }

    /// Nearest-rank percentile of per-query load `L` across the whole
    /// stream.
    pub fn l_percentile(&self, pct: u64) -> u64 {
        let mut samples: Vec<u64> = self.records.iter().map(|q| q.l).collect();
        samples.sort_unstable();
        percentile(&samples, pct)
    }

    /// Order-sensitive digest of the whole replay: folds every query's
    /// serial and output digest, so two replays with equal digests
    /// served identical results in identical order.
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        for q in &self.records {
            h.write_u64(q.serial);
            h.write_u64(q.digest);
        }
        h.finish()
    }

    fn faults_label(&self) -> String {
        match &self.config.faults {
            None => "off".to_string(),
            Some(f) => {
                let strategy = match f.strategy {
                    parqp_faults::RecoveryStrategy::Checkpoint { every } => {
                        format!("checkpoint({every})")
                    }
                    parqp_faults::RecoveryStrategy::Replication { replicas } => {
                        format!("replication({replicas})")
                    }
                };
                format!("{strategy}/h{}", f.horizon)
            }
        }
    }

    /// The human-readable summary behind `parqp serve`.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let c = &self.config;
        let _ = writeln!(
            out,
            "serve replay: p={} tenants={} templates={} groups={} ticks={} seed={} \
             cache_budget={} faults={}",
            c.servers,
            c.tenants,
            c.templates,
            c.groups,
            c.ticks,
            c.seed,
            c.cache_budget,
            self.faults_label()
        );
        let _ = writeln!(
            out,
            "queries={} throughput={}/kticks p50(L)={} p99(L)={} rounds={} C={} tuples \
             ({} words)",
            self.served(),
            self.throughput_per_kticks(),
            self.l_percentile(50),
            self.l_percentile(99),
            self.totals.num_rounds(),
            self.totals.total_tuples(),
            self.totals.total_words(),
        );
        let _ = writeln!(
            out,
            "cache: hits={} misses={} hit_rate={:.4} insertions={} evictions={} rejected={} \
             resident={} saved_reads={} saved_words={}",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate(),
            self.cache.insertions,
            self.cache.evictions,
            self.cache.rejected,
            self.cache.resident_tuples,
            self.cache.reads_saved,
            self.cache.words_saved,
        );
        let _ = writeln!(
            out,
            "io: reads={} misses={} evictions={} hit_rate={:.4}",
            self.io.reads,
            self.io.misses,
            self.io.evictions,
            self.io.hit_rate(),
        );
        if let Some(log) = &self.fault_log {
            let _ = writeln!(
                out,
                "faults: fired={} recovery_rounds={} recovery_tuples={} recovery_words={}",
                log.fired(),
                log.recovery_rounds,
                log.recovery_tuples,
                log.recovery_words,
            );
        }
        let _ = writeln!(
            out,
            "{:>6} {:>7} {:>8} {:>8} {:>7} {:>6} {:>9}",
            "tenant", "served", "p50(L)", "p99(L)", "rounds", "hit%", "q/kticks"
        );
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "{:>6} {:>7} {:>8} {:>8} {:>7} {:>6.1} {:>9}",
                t.tenant,
                t.served,
                t.l_p50,
                t.l_p99,
                t.rounds,
                100.0 * t.hit_rate(),
                t.throughput_per_kticks,
            );
        }
        let _ = writeln!(out, "digest=0x{:016x}", self.digest());
        out
    }

    /// The machine-readable replay: one JSON object per line (config,
    /// then queries, tenants, cache, optional faults, totals), fixed
    /// field order, fixed-precision floats.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        let c = &self.config;
        let _ = writeln!(
            out,
            "{{\"type\":\"config\",\"servers\":{},\"tenants\":{},\"templates\":{},\
             \"groups\":{},\"ticks\":{},\"seed\":{},\"zipf_q\":\"{:.3}\",\
             \"zipf_data\":\"{:.3}\",\"cache_budget\":{},\"page_size\":{},\
             \"pool_pages\":{},\"faults\":\"{}\"}}",
            c.servers,
            c.tenants,
            c.templates,
            c.groups,
            c.ticks,
            c.seed,
            c.zipf_q,
            c.zipf_data,
            c.cache_budget,
            c.store.page_size,
            c.store.pool_pages,
            self.faults_label(),
        );
        for q in &self.records {
            let _ = writeln!(
                out,
                "{{\"type\":\"query\",\"serial\":{},\"tick\":{},\"tenant\":{},\
                 \"template\":\"{}\",\"group\":{},\"cache\":\"{}\",\"l\":{},\
                 \"rounds\":{},\"tuples\":{},\"words\":{},\"out\":{},\
                 \"digest\":\"0x{:016x}\"}}",
                q.serial,
                q.tick,
                q.tenant,
                q.template,
                q.group,
                q.cache,
                q.l,
                q.rounds,
                q.tuples,
                q.words,
                q.out_rows,
                q.digest,
            );
        }
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "{{\"type\":\"tenant\",\"tenant\":{},\"served\":{},\"rounds\":{},\
                 \"tuples\":{},\"words\":{},\"hits\":{},\"misses\":{},\
                 \"hit_rate\":\"{:.4}\",\"p50_l\":{},\"p99_l\":{},\
                 \"throughput_per_kticks\":{}}}",
                t.tenant,
                t.served,
                t.rounds,
                t.tuples,
                t.words,
                t.hits,
                t.misses,
                t.hit_rate(),
                t.l_p50,
                t.l_p99,
                t.throughput_per_kticks,
            );
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"cache\",\"hits\":{},\"misses\":{},\"insertions\":{},\
             \"evictions\":{},\"rejected\":{},\"resident_tuples\":{},\
             \"peak_resident_tuples\":{},\"hit_rate\":\"{:.4}\",\"reads_saved\":{},\
             \"words_saved\":{}}}",
            self.cache.hits,
            self.cache.misses,
            self.cache.insertions,
            self.cache.evictions,
            self.cache.rejected,
            self.cache.resident_tuples,
            self.cache.peak_resident_tuples,
            self.cache.hit_rate(),
            self.cache.reads_saved,
            self.cache.words_saved,
        );
        if let Some(log) = &self.fault_log {
            let _ = writeln!(
                out,
                "{{\"type\":\"faults\",\"fired\":{},\"recovery_rounds\":{},\
                 \"recovery_tuples\":{},\"recovery_words\":{}}}",
                log.fired(),
                log.recovery_rounds,
                log.recovery_tuples,
                log.recovery_words,
            );
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"totals\",\"queries\":{},\"throughput_per_kticks\":{},\
             \"p50_l\":{},\"p99_l\":{},\"rounds\":{},\"tuples\":{},\"words\":{},\
             \"io_reads\":{},\"io_misses\":{},\"io_evictions\":{},\
             \"io_hit_rate\":\"{:.4}\",\"digest\":\"0x{:016x}\"}}",
            self.served(),
            self.throughput_per_kticks(),
            self.l_percentile(50),
            self.l_percentile(99),
            self.totals.num_rounds(),
            self.totals.total_tuples(),
            self.totals.total_words(),
            self.io.reads,
            self.io.misses,
            self.io.evictions,
            self.io.hit_rate(),
            self.digest(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{replay, ServeConfig};

    fn small() -> ServeConfig {
        ServeConfig {
            servers: 4,
            tenants: 2,
            templates: 2,
            groups: 4,
            ticks: 16,
            cache_budget: 50_000,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn digest_relation_matches_canonical_content() {
        let a = Relation::from_rows(2, [[1, 2], [3, 4]]);
        let b = Relation::from_rows(2, [[3, 4], [1, 2]]);
        assert_eq!(digest_relation(&a), digest_relation(&b), "order-free");
        let c = Relation::from_rows(2, [[1, 2], [3, 5]]);
        assert_ne!(digest_relation(&a), digest_relation(&c));
    }

    #[test]
    fn renderers_are_deterministic_and_complete() {
        let r = replay(&small()).expect("valid config");
        assert_eq!(r.table(), r.table());
        assert_eq!(r.jsonl(), r.jsonl());
        let jsonl = r.jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].starts_with("{\"type\":\"config\""));
        assert!(lines
            .last()
            .expect("non-empty")
            .starts_with("{\"type\":\"totals\""));
        let queries = lines
            .iter()
            .filter(|l| l.contains("\"type\":\"query\""))
            .count();
        assert_eq!(queries as u64, r.served());
        let tenants = lines
            .iter()
            .filter(|l| l.contains("\"type\":\"tenant\""))
            .count();
        assert_eq!(tenants, 2);
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"type\":\"cache\""))
                .count(),
            1
        );
        let table = r.table();
        assert!(table.contains("digest=0x"));
        assert!(table.contains("cache: hits="));
    }

    #[test]
    fn faulted_report_includes_the_fault_line() {
        let r = replay(&ServeConfig {
            faults: Some(crate::driver::FaultSetup::default()),
            ..small()
        })
        .expect("valid config");
        assert!(r.jsonl().contains("\"type\":\"faults\""));
        assert!(r.table().contains("faults: fired="));
    }

    #[test]
    fn stream_percentiles_are_monotone() {
        let r = replay(&small()).expect("valid config");
        assert!(r.l_percentile(50) <= r.l_percentile(99));
        assert!(r.l_percentile(99) <= r.totals.max_load_tuples());
    }
}
