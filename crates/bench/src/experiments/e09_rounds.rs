//! E09 — one round versus multiple rounds (slides 53–54).
//!
//! For the three reference queries (triangle; `R(x) ⋈ S(x,y) ⋈ T(y)`;
//! `R(x,y) ⋈ S(y,z)`) the slide 54 table gives three loads: skew-free
//! multi-round `IN/p`, skew-free one-round `IN/p^{1/τ*}`, and skewed
//! one-round `IN/p^{1/ψ*}`. We measure each cell with the matching
//! algorithm: iterative binary joins (multi-round), HyperCube (one
//! round), SkewHC on a skewed instance (one round).

use crate::table::fmt;
use crate::Table;
use parqp::data::generate;
use parqp::join::{multiway, plans, skewhc};
use parqp::model;
use parqp::prelude::*;
use parqp::query::psi_star;
use parqp_data::Relation;

fn uniform_instance(q: &Query, n: usize, seed: u64) -> Vec<Relation> {
    q.atoms()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            if a.arity() == 1 {
                generate::unary_range(n)
            } else {
                generate::key_unique_pairs(n, 1, n as u64, seed + i as u64)
            }
        })
        .collect()
}

fn skewed_instance(q: &Query, n: usize, seed: u64) -> Vec<Relation> {
    q.atoms()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            if a.arity() == 1 {
                generate::unary_range(n)
            } else {
                // Half the tuples concentrate on one key in each column.
                let mut rel =
                    generate::planted_heavy_pairs(n / 2, &[1], n / 4, 0, n as u64, seed + i as u64);
                rel.extend_from(&generate::planted_heavy_pairs(
                    n / 2,
                    &[1],
                    n / 4,
                    1,
                    n as u64,
                    seed + 100 + i as u64,
                ));
                rel
            }
        })
        .collect()
}

/// Run E09.
pub fn run() -> Vec<Table> {
    let p = 64usize;
    let n = 16_000usize;
    let mut t = Table::new(
        format!("E09 (slides 53–54): rounds vs load, p = {p}, N = {n} per atom"),
        &[
            "query",
            "τ*",
            "ψ*",
            "multi-round L (measured)",
            "paper IN/p",
            "1-round L (measured)",
            "paper IN/p^(1/τ*)",
            "1-round skewed L (measured)",
            "paper IN/p^(1/ψ*)",
        ],
    );
    let queries = [
        ("triangle", Query::triangle()),
        ("R(x)⋈S(x,y)⋈T(y)", Query::semijoin_pair()),
        ("R(x,y)⋈S(y,z)", Query::two_way()),
    ];
    for (name, q) in queries {
        let uni = uniform_instance(&q, n, 7);
        let skw = skewed_instance(&q, n, 9);
        let input: usize = uni.iter().map(Relation::len).sum();
        let sk_input: usize = skw.iter().map(Relation::len).sum();
        let tau = model::tau_star(&q);
        let psi = psi_star(&q);
        let multi = plans::binary_join_plan(&q, &uni, p, 5, None);
        let one = multiway::hypercube(&q, &uni, p, 5);
        let one_skew = skewhc::skewhc(&q, &skw, p, 5);
        t.row(vec![
            name.into(),
            fmt(tau),
            fmt(psi),
            multi.report.max_load_tuples().to_string(),
            fmt(input as f64 / p as f64),
            one.report.max_load_tuples().to_string(),
            fmt(model::one_round_load(input as f64, p as f64, tau)),
            one_skew.report.max_load_tuples().to_string(),
            fmt(model::one_round_load_skewed(sk_input as f64, p as f64, psi)),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn multi_round_load_beats_one_round_on_uniform_triangle() {
        let t = &super::run()[0];
        let tri = &t.rows[0];
        let multi: f64 = tri[3].parse().expect("multi L");
        let one: f64 = tri[5].parse().expect("one-round L");
        // IN/p < IN/p^{2/3}: the multi-round plan's load is smaller on
        // skew-free key-unique input (slide 53's point).
        assert!(multi < one, "multi {multi} should be below one-round {one}");
    }

    #[test]
    fn two_way_one_round_is_in_over_p() {
        let t = &super::run()[0];
        let row = &t.rows[2];
        let measured: f64 = row[5].parse().expect("L");
        let paper: f64 = row[6].parse().expect("paper");
        assert!(
            measured < 2.0 * paper,
            "two-way HC load {measured} vs IN/p {paper}"
        );
    }
}
