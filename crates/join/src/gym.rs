//! GYM: distributed Yannakakis over a GHD (slides 64–95).
//!
//! The Yannakakis algorithm evaluates an acyclic query in `O(IN + OUT)`
//! by an upward semijoin phase, a downward semijoin phase, and a join
//! phase over a width-1 join tree (slides 64–77). GYM distributes each
//! phase:
//!
//! * [`gym`] with `optimized = false` — **vanilla GYM** (slides 80–89):
//!   every semijoin and every join is its own communication round, giving
//!   `r = 3(n−1) = O(n)` rounds at load `O((IN+OUT)/p)`;
//! * [`gym`] with `optimized = true` — **optimized GYM**
//!   (slides 90–94): all semijoins of one tree level run in the same
//!   round (a parent with several children takes one filter round plus
//!   one intersection round), and the join phase absorbs all children of
//!   a node in one round on a per-node HyperCube grid — `r = O(d)` for a
//!   depth-`d` tree (slide 94's `r = 4` for the flat star);
//! * [`gym_ghd`] — **generalized GYM** (slide 95): materialize the bags
//!   of a width-`w` GHD with per-bag HyperCubes (one round), then run
//!   optimized GYM over the bag tree: `r = O(d)`,
//!   `L = O((IN^w + OUT)/p)` — the width/depth trade-off.
//!
//! GYM beats the one-round algorithms whenever
//! `OUT < p^{1−1/τ*} · IN` (slide 78) — experiment E11.

use crate::common::{scatter, JoinRun};
use crate::plans::combined_hash;
use parqp_data::{FastMap, FastSet, Relation, Value};
use parqp_mpc::{Cluster, Grid, HashFamily, LoadReport, Weight};
use parqp_query::{Ghd, Query, Var};

/// A distributed intermediate relation: per-server rows plus the variable
/// schema they share.
#[derive(Debug, Clone)]
struct Dist {
    schema: Vec<Var>,
    parts: Vec<Vec<Vec<Value>>>,
}

impl Dist {
    fn from_relation(rel: &Relation, vars: &[Var], p: usize) -> Self {
        Self {
            schema: vars.to_vec(),
            parts: scatter(rel, p)
                .into_iter()
                .map(Relation::into_messages)
                .collect(),
        }
    }

    fn total(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }
}

/// A message of the semijoin/join machinery.
#[derive(Debug, Clone)]
struct GymMsg {
    /// Which (parent, child) pair this belongs to.
    pair: u32,
    /// 0 = data row, 1 = semijoin key, 2 = intersection survivor.
    kind: u8,
    /// Row instance id (origin server ≪ 32 | index) for intersections.
    inst: u64,
    row: Vec<Value>,
}

impl Weight for GymMsg {
    fn words(&self) -> u64 {
        self.row.len() as u64
    }
}

fn shared_positions(left: &[Var], right: &[Var]) -> Vec<(usize, usize)> {
    left.iter()
        .enumerate()
        .filter_map(|(lp, v)| right.iter().position(|rv| rv == v).map(|rp| (lp, rp)))
        .collect()
}

/// One distributed semijoin round: `left ⋉ right`, both repartitioned by
/// the hash of their shared variables. Returns the filtered left.
fn semijoin_round(cluster: &mut Cluster, h: &HashFamily, left: Dist, right: &Dist) -> Dist {
    let p = cluster.p();
    let sv = shared_positions(&left.schema, &right.schema);
    if sv.is_empty() {
        // Disconnected: pure emptiness filter, no data movement needed
        // beyond a 1-bit flag we do not charge.
        if right.total() == 0 {
            return Dist {
                schema: left.schema,
                parts: vec![Vec::new(); p],
            };
        }
        return left;
    }
    let left_pos: Vec<usize> = sv.iter().map(|&(lp, _)| lp).collect();
    let right_pos: Vec<usize> = sv.iter().map(|&(_, rp)| rp).collect();

    let mut ex = cluster.exchange::<GymMsg>();
    for part in &left.parts {
        for row in part {
            let key: Vec<Value> = left_pos.iter().map(|&i| row[i]).collect();
            let dest =
                (combined_hash(h, &key, &(0..key.len()).collect::<Vec<_>>()) % p as u64) as usize;
            ex.send(
                dest,
                GymMsg {
                    pair: 0,
                    kind: 0,
                    inst: 0,
                    row: row.clone(),
                },
            );
        }
    }
    for part in &right.parts {
        let mut seen: FastSet<Vec<Value>> = FastSet::default();
        for row in part {
            let key: Vec<Value> = right_pos.iter().map(|&i| row[i]).collect();
            if seen.insert(key.clone()) {
                let dest = (combined_hash(h, &key, &(0..key.len()).collect::<Vec<_>>()) % p as u64)
                    as usize;
                ex.send(
                    dest,
                    GymMsg {
                        pair: 0,
                        kind: 1,
                        inst: 0,
                        row: key,
                    },
                );
            }
        }
    }
    let inboxes = ex.finish();

    let parts = inboxes
        .into_iter()
        .map(|inbox| {
            let mut keys: FastSet<Vec<Value>> = FastSet::default();
            let mut rows = Vec::new();
            for m in inbox {
                if m.kind == 1 {
                    keys.insert(m.row);
                } else {
                    rows.push(m.row);
                }
            }
            rows.retain(|row| {
                let key: Vec<Value> = left_pos.iter().map(|&i| row[i]).collect();
                keys.contains(&key)
            });
            rows
        })
        .collect();
    Dist {
        schema: left.schema,
        parts,
    }
}

/// One distributed binary join round: repartition both sides by the hash
/// of the shared variables (Cartesian grid if none) and join locally.
fn join_round(cluster: &mut Cluster, h: &HashFamily, left: Dist, right: Dist) -> Dist {
    let p = cluster.p();
    let sv = shared_positions(&left.schema, &right.schema);
    let fresh: Vec<usize> = (0..right.schema.len())
        .filter(|&rp| !left.schema.contains(&right.schema[rp]))
        .collect();
    let mut schema = left.schema.clone();
    schema.extend(fresh.iter().map(|&rp| right.schema[rp]));

    let inboxes = if sv.is_empty() {
        let (p1, p2) = crate::twoway::product_grid(left.total(), right.total(), p);
        let grid = Grid::new(vec![p1, p2]);
        let mut ex = cluster.exchange::<GymMsg>();
        let mut idx = 0u64;
        for part in &left.parts {
            for row in part {
                let band = (h.digest(0, idx) % p1 as u64) as usize;
                idx += 1;
                for dest in grid.matching(&[Some(band), None]) {
                    ex.send(
                        dest,
                        GymMsg {
                            pair: 0,
                            kind: 0,
                            inst: 0,
                            row: row.clone(),
                        },
                    );
                }
            }
        }
        idx = 0;
        for part in &right.parts {
            for row in part {
                let band = (h.digest(0, !idx) % p2 as u64) as usize;
                idx += 1;
                for dest in grid.matching(&[None, Some(band)]) {
                    ex.send(
                        dest,
                        GymMsg {
                            pair: 0,
                            kind: 1,
                            inst: 0,
                            row: row.clone(),
                        },
                    );
                }
            }
        }
        let mut boxes = ex.finish();
        boxes.resize_with(p, Vec::new);
        boxes
    } else {
        let left_pos: Vec<usize> = sv.iter().map(|&(lp, _)| lp).collect();
        let right_pos: Vec<usize> = sv.iter().map(|&(_, rp)| rp).collect();
        let mut ex = cluster.exchange::<GymMsg>();
        for part in &left.parts {
            for row in part {
                let key: Vec<Value> = left_pos.iter().map(|&i| row[i]).collect();
                let dest = (combined_hash(h, &key, &(0..key.len()).collect::<Vec<_>>()) % p as u64)
                    as usize;
                ex.send(
                    dest,
                    GymMsg {
                        pair: 0,
                        kind: 0,
                        inst: 0,
                        row: row.clone(),
                    },
                );
            }
        }
        for part in &right.parts {
            for row in part {
                let key: Vec<Value> = right_pos.iter().map(|&i| row[i]).collect();
                let dest = (combined_hash(h, &key, &(0..key.len()).collect::<Vec<_>>()) % p as u64)
                    as usize;
                ex.send(
                    dest,
                    GymMsg {
                        pair: 0,
                        kind: 1,
                        inst: 0,
                        row: row.clone(),
                    },
                );
            }
        }
        ex.finish()
    };

    let right_pos: Vec<usize> = sv.iter().map(|&(_, rp)| rp).collect();
    let left_pos: Vec<usize> = sv.iter().map(|&(lp, _)| lp).collect();
    let parts = inboxes
        .into_iter()
        .map(|inbox| {
            let mut lrows = Vec::new();
            let mut rrows = Vec::new();
            for m in inbox {
                if m.kind == 0 {
                    lrows.push(m.row);
                } else {
                    rrows.push(m.row);
                }
            }
            let mut table: FastMap<Vec<Value>, Vec<usize>> = FastMap::default();
            for (i, row) in rrows.iter().enumerate() {
                table
                    .entry(right_pos.iter().map(|&posn| row[posn]).collect())
                    .or_default()
                    .push(i);
            }
            let mut out = Vec::new();
            for lrow in &lrows {
                let key: Vec<Value> = left_pos.iter().map(|&i| lrow[i]).collect();
                if let Some(matches) = table.get(&key) {
                    for &i in matches {
                        let mut nrow = lrow.clone();
                        nrow.extend(fresh.iter().map(|&posn| rrows[i][posn]));
                        out.push(nrow);
                    }
                }
            }
            out
        })
        .collect();
    Dist { schema, parts }
}

/// GYM over a width-1 join tree: `optimized = false` is vanilla
/// (`r = O(n)`), `optimized = true` runs per-level (`r = O(d)`).
///
/// ```
/// use parqp_join::gym::gym;
/// use parqp_query::{Ghd, Query};
/// use parqp_data::generate;
///
/// let q = Query::star(4);
/// let tree = Ghd::star_flat(&q);
/// let rels: Vec<_> = (0..4).map(|i| generate::uniform(2, 100, 20, i)).collect();
/// let vanilla = gym(&q, &rels, &tree, 8, 7, false);
/// let optimized = gym(&q, &rels, &tree, 8, 7, true);
/// assert_eq!(vanilla.report.num_rounds(), 9);   // slide 89
/// assert_eq!(optimized.report.num_rounds(), 4); // slide 94
/// assert_eq!(vanilla.gathered().canonical(), optimized.gathered().canonical());
/// ```
///
/// # Panics
/// Panics if the tree is not a valid width-1 join tree of `query` with
/// one bag per atom.
pub fn gym(
    query: &Query,
    rels: &[Relation],
    tree: &Ghd,
    p: usize,
    seed: u64,
    optimized: bool,
) -> JoinRun {
    assert_eq!(rels.len(), query.num_atoms(), "one relation per atom");
    tree.validate(query).expect("invalid GHD");
    assert_eq!(
        tree.width(),
        1,
        "gym requires a width-1 join tree; use gym_ghd"
    );
    assert_eq!(tree.bags.len(), query.num_atoms(), "one bag per atom");

    let mut cluster = Cluster::new(p);
    let h = HashFamily::new(seed, 4);
    let states: Vec<Dist> = tree
        .bags
        .iter()
        .map(|bag| {
            let a = bag.atoms[0];
            Dist::from_relation(&rels[a], &query.atoms()[a].vars, p)
        })
        .collect();

    let final_dist = run_yannakakis(&mut cluster, &h, tree, states, optimized);
    finish(query, final_dist, cluster.report())
}

/// Generalized GYM over any GHD (slide 95): one round of per-bag
/// HyperCube materialization, then optimized GYM over the bag tree.
/// Bag relations are materialized under set semantics.
///
/// A bag whose cover atoms are *disconnected* (e.g. the internal bags of
/// [`Ghd::chain_balanced`]) materializes their Cartesian product — the
/// `IN^w` term of slide 95's load bound is real. Size inputs
/// accordingly.
///
/// # Panics
/// Panics if the GHD is invalid for `query`.
pub fn gym_ghd(query: &Query, rels: &[Relation], ghd: &Ghd, p: usize, seed: u64) -> JoinRun {
    ghd.validate(query).expect("invalid GHD");
    let nbags = ghd.bags.len();

    // Materialize every bag: single-atom bags are free (placement);
    // multi-atom bags run a HyperCube on their cover in parallel blocks.
    let multi: Vec<usize> = (0..nbags)
        .filter(|&b| ghd.bags[b].atoms.len() > 1)
        .collect();
    let block = if multi.is_empty() {
        p
    } else {
        (p / multi.len()).max(1)
    };
    let mut mat_reports = Vec::new();
    let mut bag_rels: Vec<Option<Relation>> = vec![None; nbags];
    for (bi, bag) in ghd.bags.iter().enumerate() {
        if bag.atoms.len() == 1 {
            let a = bag.atoms[0];
            // Project the atom onto the bag variable order.
            let cols: Vec<usize> = bag
                .vars
                .iter()
                .map(|v| {
                    query.atoms()[a]
                        .vars
                        .iter()
                        .position(|av| av == v)
                        .expect("λ covers")
                })
                .collect();
            bag_rels[bi] = Some(rels[a].project(&cols));
        } else {
            let sub_atoms: Vec<parqp_query::Atom> = bag
                .atoms
                .iter()
                .map(|&a| query.atoms()[a].clone())
                .collect();
            let sub_rels: Vec<Relation> = bag.atoms.iter().map(|&a| rels[a].clone()).collect();
            // Renumber variables for the sub-query.
            let mut sub_vars: Vec<Var> = sub_atoms.iter().flat_map(|a| a.vars.clone()).collect();
            sub_vars.sort_unstable();
            sub_vars.dedup();
            let remap = |v: Var| sub_vars.iter().position(|&sv| sv == v).expect("in sub");
            let sub_q = Query::new(
                sub_vars.len(),
                sub_atoms
                    .iter()
                    .map(|a| {
                        parqp_query::Atom::new(
                            a.name.clone(),
                            a.vars.iter().map(|&v| remap(v)).collect(),
                        )
                    })
                    .collect(),
            );
            let run = if sub_rels.iter().any(Relation::is_empty) {
                JoinRun {
                    outputs: vec![Relation::new(sub_vars.len()); block],
                    report: LoadReport::idle(block, 1),
                }
            } else {
                crate::multiway::hypercube(&sub_q, &sub_rels, block, seed ^ bi as u64)
            };
            mat_reports.push(run.report.clone());
            // Project the sub-join onto the bag vars, deduplicated.
            let cols: Vec<usize> = bag.vars.iter().map(|&v| remap(v)).collect();
            bag_rels[bi] = Some(run.gathered().project(&cols).canonical());
        }
    }
    let mat_report = if mat_reports.is_empty() {
        None
    } else {
        Some(LoadReport::parallel(&mat_reports).folded(p))
    };

    // Synthetic acyclic query over the bag relations.
    let bag_query = Query::new(
        query.num_vars(),
        ghd.bags
            .iter()
            .enumerate()
            .map(|(bi, bag)| parqp_query::Atom::new(format!("B{bi}"), bag.vars.clone()))
            .collect(),
    );
    let bag_tree = Ghd {
        bags: ghd
            .bags
            .iter()
            .enumerate()
            .map(|(bi, bag)| parqp_query::Bag {
                vars: bag.vars.clone(),
                atoms: vec![bi],
            })
            .collect(),
        parent: ghd.parent.clone(),
    };

    let mut cluster = Cluster::new(p);
    let h = HashFamily::new(seed ^ 0x6d79, 4);
    let states: Vec<Dist> = (0..nbags)
        .map(|bi| {
            Dist::from_relation(
                bag_rels[bi].as_ref().expect("materialized"),
                &ghd.bags[bi].vars,
                p,
            )
        })
        .collect();
    let final_dist = run_yannakakis(&mut cluster, &h, &bag_tree, states, true);
    let mut run = finish(&bag_query, final_dist, cluster.report());
    if let Some(mat) = mat_report {
        run.report = LoadReport::sequential(&[mat, run.report]);
    }
    run
}

/// The three Yannakakis phases over already-distributed bag states.
fn run_yannakakis(
    cluster: &mut Cluster,
    h: &HashFamily,
    tree: &Ghd,
    mut states: Vec<Dist>,
    optimized: bool,
) -> Dist {
    let order = tree.topological_order();
    let depth_of = {
        let mut d = vec![0usize; tree.bags.len()];
        for &b in &order {
            if let Some(par) = tree.parent[b] {
                d[b] = d[par] + 1;
            }
        }
        d
    };
    let max_depth = depth_of.iter().copied().max().unwrap_or(0);

    if optimized {
        // Upward, per level (deepest first): filter round (+ intersection
        // round when some parent has several children).
        for level in (1..=max_depth).rev() {
            let edges: Vec<(usize, usize)> = order
                .iter()
                .filter(|&&b| depth_of[b] == level)
                .filter_map(|&b| tree.parent[b].map(|par| (par, b)))
                .collect();
            if edges.is_empty() {
                continue;
            }
            upward_level(cluster, h, &mut states, &edges);
        }
        // Downward, per level: every bag filtered by its parent, 1 round.
        for level in 1..=max_depth {
            let edges: Vec<(usize, usize)> = order
                .iter()
                .filter(|&&b| depth_of[b] == level)
                .filter_map(|&b| tree.parent[b].map(|par| (par, b)))
                .collect();
            if edges.is_empty() {
                continue;
            }
            downward_level(cluster, h, &mut states, &edges);
        }
        // Join, per level (deepest first): each parent absorbs all its
        // children in one round on a per-parent HyperCube block.
        for level in (1..=max_depth).rev() {
            let mut by_parent: FastMap<usize, Vec<usize>> = FastMap::default();
            for &b in &order {
                if depth_of[b] == level {
                    if let Some(par) = tree.parent[b] {
                        by_parent.entry(par).or_default().push(b);
                    }
                }
            }
            if by_parent.is_empty() {
                continue;
            }
            join_level(cluster, h, &mut states, &by_parent);
        }
    } else {
        // Vanilla: one round per edge in every phase (slides 80–89).
        for &b in order.iter().rev() {
            if let Some(par) = tree.parent[b] {
                let parent_state = states[par].clone();
                states[par] = semijoin_round(cluster, h, parent_state, &states[b]);
            }
        }
        for &b in &order {
            if let Some(par) = tree.parent[b] {
                let child_state = states[b].clone();
                states[b] = semijoin_round(cluster, h, child_state, &states[par]);
            }
        }
        for &b in order.iter().rev() {
            if let Some(par) = tree.parent[b] {
                let left = states[par].clone();
                let right = states[b].clone();
                states[par] = join_round(cluster, h, left, right);
            }
        }
    }

    // Combine roots (forest ⇒ Cartesian product rounds).
    let roots: Vec<usize> = (0..tree.bags.len())
        .filter(|&b| tree.parent[b].is_none())
        .collect();
    let mut acc = states[roots[0]].clone();
    for &r in &roots[1..] {
        let right = states[r].clone();
        acc = join_round(cluster, h, acc, right);
    }
    acc
}

/// Optimized upward level: all parents filtered by all their
/// level-children. One filter round; plus one intersection round if any
/// parent has ≥ 2 children here (slides 90–91).
fn upward_level(
    cluster: &mut Cluster,
    h: &HashFamily,
    states: &mut [Dist],
    edges: &[(usize, usize)],
) {
    let p = cluster.p();
    let mut children_of: FastMap<usize, Vec<usize>> = FastMap::default();
    for &(par, b) in edges {
        children_of.entry(par).or_default().push(b);
    }
    let needs_intersection = children_of.values().any(|c| c.len() > 1);

    // Filter round.
    let mut ex = cluster.exchange::<GymMsg>();
    let mut pair_meta = Vec::new(); // (parent, child, left_pos, right_pos)
    for (pair_id, &(par, b)) in edges.iter().enumerate() {
        let sv = shared_positions(&states[par].schema, &states[b].schema);
        assert!(!sv.is_empty(), "join-tree edges share variables");
        let left_pos: Vec<usize> = sv.iter().map(|&(lp, _)| lp).collect();
        let right_pos: Vec<usize> = sv.iter().map(|&(_, rp)| rp).collect();
        // Parent rows, tagged with instance ids.
        for (sid, part) in states[par].parts.iter().enumerate() {
            for (idx, row) in part.iter().enumerate() {
                let key: Vec<Value> = left_pos.iter().map(|&i| row[i]).collect();
                let dest = (combined_hash(h, &key, &(0..key.len()).collect::<Vec<_>>())
                    ^ parqp_mpc::hash::splitmix64(pair_id as u64))
                    % p as u64;
                ex.send(
                    dest as usize,
                    GymMsg {
                        pair: pair_id as u32,
                        kind: 0,
                        inst: ((sid as u64) << 32) | idx as u64,
                        row: row.clone(),
                    },
                );
            }
        }
        // Child keys, deduplicated per origin server.
        for part in &states[b].parts {
            let mut seen: FastSet<Vec<Value>> = FastSet::default();
            for row in part {
                let key: Vec<Value> = right_pos.iter().map(|&i| row[i]).collect();
                if seen.insert(key.clone()) {
                    let dest = (combined_hash(h, &key, &(0..key.len()).collect::<Vec<_>>())
                        ^ parqp_mpc::hash::splitmix64(pair_id as u64))
                        % p as u64;
                    ex.send(
                        dest as usize,
                        GymMsg {
                            pair: pair_id as u32,
                            kind: 1,
                            inst: 0,
                            row: key,
                        },
                    );
                }
            }
        }
        pair_meta.push((par, b, left_pos, right_pos));
    }
    let inboxes = ex.finish();

    // Local filtering: survivors per pair per server.
    type Survivors = Vec<Vec<(u64, Vec<Value>)>>; // per server: (instance, row)
    let mut survivors: Vec<Survivors> = vec![vec![Vec::new(); p]; edges.len()];
    for (sid, inbox) in inboxes.into_iter().enumerate() {
        let mut keys: Vec<FastSet<Vec<Value>>> = vec![FastSet::default(); edges.len()];
        let mut rows: Vec<Vec<(u64, Vec<Value>)>> = vec![Vec::new(); edges.len()];
        for m in inbox {
            if m.kind == 1 {
                keys[m.pair as usize].insert(m.row);
            } else {
                rows[m.pair as usize].push((m.inst, m.row));
            }
        }
        for (pair_id, pair_rows) in rows.into_iter().enumerate() {
            let left_pos = &pair_meta[pair_id].2;
            for (inst, row) in pair_rows {
                let key: Vec<Value> = left_pos.iter().map(|&i| row[i]).collect();
                if keys[pair_id].contains(&key) {
                    survivors[pair_id][sid].push((inst, row));
                }
            }
        }
    }

    if !needs_intersection {
        // Each parent had exactly one child: survivors are the new state.
        for (pair_id, &(par, _, _, _)) in pair_meta.iter().enumerate() {
            states[par].parts = survivors[pair_id]
                .iter()
                .map(|rows| rows.iter().map(|(_, r)| r.clone()).collect())
                .collect();
        }
        return;
    }

    // Intersection round: survivors routed by instance id; an instance
    // survives iff all of its parent's filters passed it (slide 91).
    let mut ex = cluster.exchange::<GymMsg>();
    for (pair_id, per_server) in survivors.iter().enumerate() {
        for rows in per_server {
            for (inst, row) in rows {
                let dest = (parqp_mpc::hash::splitmix64(*inst) % p as u64) as usize;
                ex.send(
                    dest,
                    GymMsg {
                        pair: pair_id as u32,
                        kind: 2,
                        inst: *inst,
                        row: row.clone(),
                    },
                );
            }
        }
    }
    let inboxes = ex.finish();

    let mut filter_count: FastMap<usize, u32> = FastMap::default();
    for (pair_id, &(par, _, _, _)) in pair_meta.iter().enumerate() {
        let _ = pair_id;
        *filter_count.entry(par).or_insert(0) += 1;
    }
    let parent_of_pair: Vec<usize> = pair_meta.iter().map(|m| m.0).collect();

    let mut new_parts: FastMap<usize, Vec<Vec<Vec<Value>>>> = FastMap::default();
    for &par in children_of.keys() {
        new_parts.insert(par, vec![Vec::new(); p]);
    }
    for (sid, inbox) in inboxes.into_iter().enumerate() {
        // Count appearances of each (parent, inst); keep one row copy.
        let mut counts: FastMap<(usize, u64), (u32, Vec<Value>)> = FastMap::default();
        for m in inbox {
            let par = parent_of_pair[m.pair as usize];
            let e = counts.entry((par, m.inst)).or_insert((0, m.row));
            e.0 += 1;
        }
        for ((par, _inst), (cnt, row)) in counts {
            if cnt == filter_count[&par] {
                new_parts.get_mut(&par).expect("present")[sid].push(row);
            }
        }
    }
    for (par, parts) in new_parts {
        states[par].parts = parts;
    }
}

/// Optimized downward level: every level bag filtered by its (unique)
/// parent, all in one round.
fn downward_level(
    cluster: &mut Cluster,
    h: &HashFamily,
    states: &mut [Dist],
    edges: &[(usize, usize)],
) {
    let p = cluster.p();
    let mut ex = cluster.exchange::<GymMsg>();
    let mut pair_meta = Vec::new();
    for (pair_id, &(par, b)) in edges.iter().enumerate() {
        let sv = shared_positions(&states[b].schema, &states[par].schema);
        assert!(!sv.is_empty(), "join-tree edges share variables");
        let left_pos: Vec<usize> = sv.iter().map(|&(lp, _)| lp).collect();
        let right_pos: Vec<usize> = sv.iter().map(|&(_, rp)| rp).collect();
        for part in &states[b].parts {
            for row in part {
                let key: Vec<Value> = left_pos.iter().map(|&i| row[i]).collect();
                let dest = (combined_hash(h, &key, &(0..key.len()).collect::<Vec<_>>())
                    ^ parqp_mpc::hash::splitmix64(pair_id as u64))
                    % p as u64;
                ex.send(
                    dest as usize,
                    GymMsg {
                        pair: pair_id as u32,
                        kind: 0,
                        inst: 0,
                        row: row.clone(),
                    },
                );
            }
        }
        for part in &states[par].parts {
            let mut seen: FastSet<Vec<Value>> = FastSet::default();
            for row in part {
                let key: Vec<Value> = right_pos.iter().map(|&i| row[i]).collect();
                if seen.insert(key.clone()) {
                    let dest = (combined_hash(h, &key, &(0..key.len()).collect::<Vec<_>>())
                        ^ parqp_mpc::hash::splitmix64(pair_id as u64))
                        % p as u64;
                    ex.send(
                        dest as usize,
                        GymMsg {
                            pair: pair_id as u32,
                            kind: 1,
                            inst: 0,
                            row: key,
                        },
                    );
                }
            }
        }
        pair_meta.push((par, b, left_pos));
    }
    let inboxes = ex.finish();

    let mut new_parts: Vec<Vec<Vec<Vec<Value>>>> = vec![vec![Vec::new(); p]; edges.len()];
    for (sid, inbox) in inboxes.into_iter().enumerate() {
        let mut keys: Vec<FastSet<Vec<Value>>> = vec![FastSet::default(); edges.len()];
        let mut rows: Vec<Vec<Vec<Value>>> = vec![Vec::new(); edges.len()];
        for m in inbox {
            if m.kind == 1 {
                keys[m.pair as usize].insert(m.row);
            } else {
                rows[m.pair as usize].push(m.row);
            }
        }
        for (pair_id, pair_rows) in rows.into_iter().enumerate() {
            let left_pos = &pair_meta[pair_id].2;
            for row in pair_rows {
                let key: Vec<Value> = left_pos.iter().map(|&i| row[i]).collect();
                if keys[pair_id].contains(&key) {
                    new_parts[pair_id][sid].push(row);
                }
            }
        }
    }
    for (pair_id, &(_, b, _)) in pair_meta.iter().enumerate() {
        states[b].parts = std::mem::take(&mut new_parts[pair_id]);
    }
}

/// Optimized join level: each parent absorbs all its children in one
/// round on its own HyperCube block (slide 93's "Skew-HC join phase").
fn join_level(
    cluster: &mut Cluster,
    h: &HashFamily,
    states: &mut [Dist],
    by_parent: &FastMap<usize, Vec<usize>>,
) {
    let p = cluster.p();
    let mut parents: Vec<usize> = by_parent.keys().copied().collect();
    parents.sort_unstable();
    let block = (p / parents.len()).max(1);

    // Per-parent grid over its children dimensions.
    struct NodePlan {
        parent: usize,
        children: Vec<usize>,
        grid: Grid,
        offset: usize,
        sv: Vec<(Vec<usize>, Vec<usize>)>, // per child: (parent pos, child pos)
    }
    let mut plans = Vec::new();
    for (i, &par) in parents.iter().enumerate() {
        let children = by_parent[&par].clone();
        let c = children.len();
        // The node's one-round merge is itself a small multiway join:
        // parent over all c dimensions, child i over dimension i. Let the
        // share LP split the block budget (slide 93's "Skew-HC" phase).
        let shares = if block >= 2 {
            let mut edges: Vec<Vec<usize>> = vec![(0..c).collect()];
            edges.extend((0..c).map(|d| vec![d]));
            let mini = parqp_lp::Hypergraph::new(c, edges);
            let mut sizes = vec![states[par].total().max(1) as u64];
            sizes.extend(children.iter().map(|&b| states[b].total().max(1) as u64));
            parqp_lp::plan_shares(&mini, &sizes, block).shares
        } else {
            vec![1; c]
        };
        let grid = Grid::new(shares);
        let sv = children
            .iter()
            .map(|&b| {
                let pairs = shared_positions(&states[par].schema, &states[b].schema);
                assert!(!pairs.is_empty(), "join-tree edges share variables");
                (
                    pairs.iter().map(|&(lp, _)| lp).collect(),
                    pairs.iter().map(|&(_, rp)| rp).collect(),
                )
            })
            .collect();
        plans.push(NodePlan {
            parent: par,
            children,
            grid,
            offset: i * block,
            sv,
        });
    }

    let mut ex = cluster.exchange::<GymMsg>();
    for plan in &plans {
        let par = plan.parent;
        // Parent rows: fully determined coordinates.
        for part in &states[par].parts {
            for row in part {
                let coords: Vec<usize> = plan
                    .sv
                    .iter()
                    .enumerate()
                    .map(|(ci, (ppos, _))| {
                        let key: Vec<Value> = ppos.iter().map(|&i| row[i]).collect();
                        (combined_hash(h, &key, &(0..key.len()).collect::<Vec<_>>())
                            % plan.grid.dims()[ci] as u64) as usize
                    })
                    .collect();
                ex.send(
                    plan.offset + plan.grid.rank(&coords),
                    GymMsg {
                        pair: u32::MAX,
                        kind: 0,
                        inst: 0,
                        row: row.clone(),
                    },
                );
            }
        }
        // Child rows: own dimension fixed, others broadcast.
        for (ci, &b) in plan.children.iter().enumerate() {
            let (_, cpos) = &plan.sv[ci];
            for part in &states[b].parts {
                for row in part {
                    let key: Vec<Value> = cpos.iter().map(|&i| row[i]).collect();
                    let coord = (combined_hash(h, &key, &(0..key.len()).collect::<Vec<_>>())
                        % plan.grid.dims()[ci] as u64) as usize;
                    let mut partial = vec![None; plan.children.len()];
                    partial[ci] = Some(coord);
                    for dest in plan.grid.matching(&partial) {
                        ex.send(
                            plan.offset + dest,
                            GymMsg {
                                pair: ci as u32,
                                kind: 1,
                                inst: 0,
                                row: row.clone(),
                            },
                        );
                    }
                }
            }
        }
    }
    let inboxes = ex.finish();

    // Local: fold children into the parent fragment.
    for plan in &plans {
        let par = plan.parent;
        let mut schema = states[par].schema.clone();
        let child_schemas: Vec<Vec<Var>> = plan
            .children
            .iter()
            .map(|&b| states[b].schema.clone())
            .collect();
        let mut new_parts: Vec<Vec<Vec<Value>>> = vec![Vec::new(); p];
        for local in 0..plan.grid.len() {
            let sid = plan.offset + local;
            let inbox = &inboxes[sid];
            let mut acc: Vec<Vec<Value>> = inbox
                .iter()
                .filter(|m| m.kind == 0)
                .map(|m| m.row.clone())
                .collect();
            let mut acc_schema = states[par].schema.clone();
            for (ci, child_schema) in child_schemas.iter().enumerate() {
                let rows: Vec<&Vec<Value>> = inbox
                    .iter()
                    .filter(|m| m.kind == 1 && m.pair == ci as u32)
                    .map(|m| &m.row)
                    .collect();
                let pairs = shared_positions(&acc_schema, child_schema);
                let lpos: Vec<usize> = pairs.iter().map(|&(lp, _)| lp).collect();
                let rpos: Vec<usize> = pairs.iter().map(|&(_, rp)| rp).collect();
                let fresh: Vec<usize> = (0..child_schema.len())
                    .filter(|&rp| !acc_schema.contains(&child_schema[rp]))
                    .collect();
                let mut table: FastMap<Vec<Value>, Vec<usize>> = FastMap::default();
                for (i, row) in rows.iter().enumerate() {
                    table
                        .entry(rpos.iter().map(|&posn| row[posn]).collect())
                        .or_default()
                        .push(i);
                }
                let mut next = Vec::new();
                for arow in &acc {
                    let key: Vec<Value> = lpos.iter().map(|&i| arow[i]).collect();
                    if let Some(matches) = table.get(&key) {
                        for &i in matches {
                            let mut nrow = arow.clone();
                            nrow.extend(fresh.iter().map(|&posn| rows[i][posn]));
                            next.push(nrow);
                        }
                    }
                }
                acc = next;
                acc_schema.extend(fresh.iter().map(|&posn| child_schema[posn]));
            }
            new_parts[sid] = acc;
            schema = acc_schema;
        }
        states[par] = Dist {
            schema,
            parts: new_parts,
        };
    }
}

/// Convert the final distributed state into per-server output relations
/// in variable order.
fn finish(query: &Query, dist: Dist, report: LoadReport) -> JoinRun {
    assert_eq!(
        dist.schema.len(),
        query.num_vars(),
        "result must bind every variable"
    );
    let mut col_of_var = vec![0usize; query.num_vars()];
    for (i, &v) in dist.schema.iter().enumerate() {
        col_of_var[v] = i;
    }
    let outputs = dist
        .parts
        .into_iter()
        .map(|rows| {
            let mut rel = Relation::with_capacity(query.num_vars(), rows.len());
            let mut buf = vec![0; query.num_vars()];
            for row in rows {
                for (v, slot) in buf.iter_mut().enumerate() {
                    *slot = row[col_of_var[v]];
                }
                rel.push(&buf);
            }
            rel
        })
        .collect();
    JoinRun { outputs, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_data::generate;
    use parqp_query::evaluate;

    fn check(q: &Query, rels: &[Relation], run: &JoinRun) {
        let expect = evaluate(q, rels);
        assert_eq!(run.gathered().canonical(), expect.canonical());
    }

    #[test]
    fn vanilla_star_matches_oracle_with_9_rounds() {
        // Slide 89: star with 4 atoms (3 edges) runs in r = 9.
        let q = Query::star(4);
        let tree = Ghd::star_flat(&q);
        let rels: Vec<Relation> = (0..4)
            .map(|i| generate::uniform(2, 200, 40, i as u64))
            .collect();
        let run = gym(&q, &rels, &tree, 8, 3, false);
        check(&q, &rels, &run);
        assert_eq!(run.report.num_rounds(), 9);
    }

    #[test]
    fn optimized_star_matches_oracle_with_4_rounds() {
        // Slide 94: the flat star runs in r = 4 (filter, intersect,
        // downward, HC join).
        let q = Query::star(4);
        let tree = Ghd::star_flat(&q);
        let rels: Vec<Relation> = (0..4)
            .map(|i| generate::uniform(2, 200, 40, i as u64))
            .collect();
        let run = gym(&q, &rels, &tree, 8, 3, true);
        check(&q, &rels, &run);
        assert_eq!(run.report.num_rounds(), 4);
    }

    #[test]
    fn chain_vanilla_vs_optimized_rounds() {
        let n = 6;
        let q = Query::chain(n);
        let tree = Ghd::join_tree(&q).expect("chains are acyclic");
        let rels: Vec<Relation> = (0..n)
            .map(|i| generate::uniform(2, 120, 25, 10 + i as u64))
            .collect();
        let v = gym(&q, &rels, &tree, 8, 5, false);
        let o = gym(&q, &rels, &tree, 8, 5, true);
        check(&q, &rels, &v);
        assert_eq!(v.gathered().canonical(), o.gathered().canonical());
        assert_eq!(v.report.num_rounds(), 3 * (n - 1));
        // A path tree has one child per level: up d + down d + join d.
        assert_eq!(o.report.num_rounds(), 3 * (n - 1));
    }

    #[test]
    fn slide64_query_both_modes() {
        let q = Query::slide64_tree();
        let tree = Ghd::join_tree(&q).expect("acyclic");
        let rels: Vec<Relation> = (0..5)
            .map(|i| generate::uniform(2, 150, 30, 20 + i as u64))
            .collect();
        let v = gym(&q, &rels, &tree, 8, 7, false);
        let o = gym(&q, &rels, &tree, 8, 7, true);
        check(&q, &rels, &v);
        check(&q, &rels, &o);
        assert!(o.report.num_rounds() <= v.report.num_rounds());
    }

    #[test]
    fn dangling_tuples_filtered_before_join() {
        // Yannakakis' point: intermediates never exceed OUT. One chain-3
        // relation has keys that never join; after semijoins the join
        // phase must not see them.
        let n = 400;
        let q = Query::chain(3);
        let r1 = generate::key_unique_pairs(n, 1, 1 << 30, 1);
        let r2 = generate::key_unique_pairs(n, 0, 1 << 30, 2); // A1 keys ✓, A2 random
        let r3 = generate::uniform(2, n, 1 << 30, 3); // A2 almost never matches
        let rels = vec![r1, r2, r3];
        let tree = Ghd::join_tree(&q).expect("acyclic");
        let run = gym(&q, &rels, &tree, 8, 9, false);
        check(&q, &rels, &run);
        // The join-phase rounds (last 2) must carry almost nothing.
        let maxima = run.report.round_max_tuples();
        let join_phase_max = maxima[maxima.len() - 2..]
            .iter()
            .max()
            .copied()
            .unwrap_or(0);
        assert!(join_phase_max < 20, "join phase load {join_phase_max}");
    }

    #[test]
    fn gym_ghd_chain_blocks_matches_oracle() {
        let n = 6;
        let q = Query::chain(n);
        let rels: Vec<Relation> = (0..n)
            .map(|i| generate::uniform(2, 100, 20, 30 + i as u64))
            .collect();
        for w in [1, 2, 3] {
            let ghd = Ghd::chain_blocks(n, w);
            let run = gym_ghd(&q, &rels, &ghd, 8, 11);
            let expect = evaluate(&q, &rels);
            assert_eq!(
                run.gathered().canonical(),
                expect.canonical(),
                "width {w} mismatch"
            );
        }
    }

    #[test]
    fn gym_ghd_balanced_fewer_rounds_than_path() {
        // Balanced bags have disconnected covers (Cartesian products of
        // IN^w tuples), so keep the instance small.
        let n = 16;
        let q = Query::chain(n);
        let rels: Vec<Relation> = (0..n)
            .map(|i| generate::key_unique_pairs(40, 1, 40, 40 + i as u64))
            .collect();
        let path = gym_ghd(&q, &rels, &Ghd::chain_blocks(n, 1), 8, 13);
        let balanced = gym_ghd(&q, &rels, &Ghd::chain_balanced(n), 8, 13);
        assert_eq!(path.gathered().canonical(), balanced.gathered().canonical());
        assert!(
            balanced.report.num_rounds() < path.report.num_rounds(),
            "balanced {} vs path {}",
            balanced.report.num_rounds(),
            path.report.num_rounds()
        );
    }

    #[test]
    fn forest_query_product_of_components() {
        let q = Query::product();
        let tree = Ghd::join_tree(&q).expect("acyclic");
        let r = generate::uniform(1, 50, 500, 51);
        let s = generate::uniform(1, 60, 500, 52);
        let rels = vec![r, s];
        let run = gym(&q, &rels, &tree, 8, 15, false);
        assert_eq!(run.output_size(), 50 * 60);
    }

    #[test]
    fn empty_relation_empty_output() {
        let q = Query::star(3);
        let tree = Ghd::star_flat(&q);
        let rels = vec![
            generate::uniform(2, 50, 10, 61),
            Relation::new(2),
            generate::uniform(2, 50, 10, 62),
        ];
        for optimized in [false, true] {
            let run = gym(&q, &rels, &tree, 4, 17, optimized);
            assert_eq!(run.output_size(), 0);
        }
    }
}
