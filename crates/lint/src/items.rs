//! Pass 1 of the effect analyzer: a lightweight item model.
//!
//! The effect rules (PQ401–PQ404, [`crate::effects`]) need to know *which
//! function* a given source line belongs to, what that function is
//! called, which type's `impl` block it sits in, and which identifiers
//! are parameters (so higher-order calls through a parameter can be
//! flagged as unresolvable). This pass extracts exactly that — a flat
//! list of [`FnItem`]s with line spans — from the sanitized token stream
//! produced by [`crate::tokenize`].
//!
//! Like the tokenizer it builds on, this is *not* a parser: it tracks
//! brace depth and a handful of keywords (`fn`, `impl`, `trait`).
//! Closures are deliberately **not** items — a closure body belongs to
//! its enclosing function, which is the right granularity for effect
//! propagation (a closure inherits its parent's calling context).

use crate::tokenize::SourceFile;

/// One `fn` item: a free function, an inherent/trait `impl` method, or a
/// trait's default method.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name (the identifier after `fn`).
    pub name: String,
    /// The self type of the enclosing `impl`/`trait` block, if any
    /// (`impl Foo for Bar` records `Bar`; `trait Baz` records `Baz`).
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 1-based line of the body's closing `}` (== `sig_line` for
    /// bodyless trait declarations).
    pub end_line: usize,
    /// Parameter pattern identifiers (excluding `self`, `mut`, `ref`).
    pub params: Vec<String>,
    /// Whether the signature sits inside a `#[cfg(test)]` block.
    pub is_test: bool,
    /// Whether the item has a `{ … }` body.
    pub has_body: bool,
}

impl FnItem {
    /// Fully qualified display name for diagnostics: `Owner::name` or
    /// `name`.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

enum Pending {
    /// Accumulating a `fn` signature until its `{` or terminating `;`.
    Fn {
        text: String,
        line: usize,
        /// `(`/`[` nesting — a `;` inside `[u8; N]` must not end the item.
        nest: usize,
    },
    /// Accumulating an `impl`/`trait` header until its `{`.
    Header { text: String },
}

enum BlockKind {
    Fn(usize),
    Owner,
    Other,
}

struct OpenBlock {
    kind: BlockKind,
    /// Brace depth *before* this block's `{` — the block closes when a
    /// `}` returns the depth to this value.
    close_depth: usize,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Extract every `fn` item from a sanitized file.
pub fn extract(file: &SourceFile) -> Vec<FnItem> {
    let mut items: Vec<FnItem> = Vec::new();
    let mut stack: Vec<OpenBlock> = Vec::new();
    let mut depth: usize = 0;
    let mut pending: Option<Pending> = None;

    for line in &file.lines {
        let bytes = line.code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if let Some(p) = pending.as_mut() {
                match p {
                    Pending::Fn {
                        text,
                        line: sig,
                        nest,
                    } => match c {
                        '(' | '[' => {
                            *nest += 1;
                            text.push(c);
                            i += 1;
                        }
                        ')' | ']' => {
                            *nest = nest.saturating_sub(1);
                            text.push(c);
                            i += 1;
                        }
                        ';' if *nest == 0 => {
                            // Bodyless declaration (trait method) — or a
                            // `fn(..)` pointer type, which parses to an
                            // empty name and is dropped.
                            if let Some(item) = finish_fn(text, *sig, *sig, line.in_test, false) {
                                items.push(item);
                            }
                            pending = None;
                            i += 1;
                        }
                        '}' if *nest == 0 => {
                            // A `}` cannot occur in a fn signature: this
                            // was a `fn(..)` pointer type in a struct
                            // field. Drop it and reprocess the brace as
                            // ordinary code.
                            pending = None;
                        }
                        '{' => {
                            let item = finish_fn(text, *sig, *sig, line.in_test, true);
                            let kind = match item {
                                Some(item) => {
                                    items.push(item);
                                    BlockKind::Fn(items.len() - 1)
                                }
                                None => BlockKind::Other,
                            };
                            stack.push(OpenBlock {
                                kind,
                                close_depth: depth,
                            });
                            depth += 1;
                            pending = None;
                            i += 1;
                        }
                        _ => {
                            text.push(c);
                            i += 1;
                        }
                    },
                    Pending::Header { text } => match c {
                        '{' => {
                            stack.push(OpenBlock {
                                kind: BlockKind::Owner,
                                close_depth: depth,
                            });
                            depth += 1;
                            pending = None;
                            i += 1;
                        }
                        ';' => {
                            // `impl Foo;`-style degenerate header: drop it.
                            pending = None;
                            i += 1;
                        }
                        _ => {
                            text.push(c);
                            i += 1;
                        }
                    },
                }
                continue;
            }
            match c {
                '{' => {
                    depth += 1;
                    i += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while stack.last().is_some_and(|b| b.close_depth == depth) {
                        if let Some(OpenBlock {
                            kind: BlockKind::Fn(idx),
                            ..
                        }) = stack.pop()
                        {
                            items[idx].end_line = line.number;
                        }
                    }
                    i += 1;
                }
                _ if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    match &line.code[start..i] {
                        "fn" => {
                            pending = Some(Pending::Fn {
                                text: String::new(),
                                line: line.number,
                                nest: 0,
                            });
                        }
                        kw @ ("impl" | "trait") => {
                            pending = Some(Pending::Header {
                                text: format!("{kw} "),
                            });
                        }
                        _ => {}
                    }
                }
                _ => i += 1,
            }
        }
        // Line break inside a pending signature: keep tokens separated.
        if let Some(Pending::Fn { text, .. } | Pending::Header { text }) = pending.as_mut() {
            text.push(' ');
        }
    }
    items
}

/// Map each 1-based line to the *innermost* item containing it.
/// `result[line - 1]` is an index into the `extract` output.
pub fn line_owners(items: &[FnItem], num_lines: usize) -> Vec<Option<usize>> {
    let mut owners = vec![None; num_lines];
    // Items appear in opening order, so an inner (nested) fn is visited
    // after its enclosing fn and overwrites the shared range.
    for (idx, item) in items.iter().enumerate() {
        for l in item.sig_line..=item.end_line.min(num_lines) {
            owners[l - 1] = Some(idx);
        }
    }
    owners
}

/// Parse an accumulated signature (everything after `fn`, up to but not
/// including the `{`/`;`). Returns `None` for nameless `fn(..)` pointer
/// types.
fn finish_fn(
    text: &str,
    sig_line: usize,
    end_line: usize,
    is_test: bool,
    has_body: bool,
) -> Option<FnItem> {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    let start = i;
    while i < bytes.len() && is_ident_byte(bytes[i]) {
        i += 1;
    }
    let name = &text[start..i];
    if name.is_empty() {
        return None;
    }
    Some(FnItem {
        name: name.to_string(),
        owner: None, // filled by the caller via the block stack
        sig_line,
        end_line,
        params: parse_params(&text[i..]),
        is_test,
        has_body,
    })
}

/// Extract the parameter-list identifiers from the signature tail after
/// the name: skip the generics (angle-bracket matched, `->` ignored),
/// match the first `(` … `)` group, split at top-level commas, and take
/// each piece's pattern identifiers (the part before its `:`).
fn parse_params(tail: &str) -> Vec<String> {
    let bytes = tail.as_bytes();
    let mut angle = 0usize;
    let mut i = 0;
    // Find the opening paren of the parameter list.
    while i < bytes.len() {
        match bytes[i] {
            b'<' => angle += 1,
            b'>' if i == 0 || bytes[i - 1] != b'-' => angle = angle.saturating_sub(1),
            b'(' if angle == 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= bytes.len() {
        return Vec::new();
    }
    // Match to the closing paren.
    let open = i;
    let mut paren = 0usize;
    let mut close = open;
    while close < bytes.len() {
        match bytes[close] {
            b'(' => paren += 1,
            b')' => {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            }
            _ => {}
        }
        close += 1;
    }
    let inner = &tail[open + 1..close.min(tail.len())];

    let mut params = Vec::new();
    for piece in split_top_level(inner) {
        let pattern = match find_top_level_colon(&piece) {
            Some(pos) => &piece[..pos],
            // `self`, `&mut self`, `_`: no binding to record.
            None => continue,
        };
        for word in idents_of(pattern) {
            if !matches!(word.as_str(), "mut" | "ref" | "self" | "_" | "box") {
                params.push(word);
            }
        }
    }
    params
}

/// Split at commas that sit outside `()`/`[]`/`<>` nesting.
fn split_top_level(s: &str) -> Vec<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut start = 0;
    let mut nest = 0usize;
    let mut angle = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' => nest += 1,
            b')' | b']' => nest = nest.saturating_sub(1),
            b'<' => angle += 1,
            b'>' if i == 0 || bytes[i - 1] != b'-' => angle = angle.saturating_sub(1),
            b',' if nest == 0 && angle == 0 => {
                out.push(s[start..i].to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < s.len() {
        out.push(s[start..].to_string());
    }
    out
}

/// The byte offset of the pattern/type separator `:` (ignoring `::`),
/// outside any nesting.
fn find_top_level_colon(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut nest = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'<' => nest += 1,
            b')' | b']' => nest = nest.saturating_sub(1),
            b'>' if i == 0 || bytes[i - 1] != b'-' => nest = nest.saturating_sub(1),
            b':' if nest == 0 => {
                if bytes.get(i + 1) == Some(&b':') {
                    i += 2;
                    continue;
                }
                return Some(i);
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn idents_of(s: &str) -> Vec<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if (bytes[i] as char).is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            out.push(s[start..i].to_string());
        } else {
            i += 1;
        }
    }
    out
}

/// Parse the self type out of an `impl`/`trait` header: the last path
/// segment of the type after `for` (or after the generics when there is
/// no `for`). `trait Foo` yields `Foo`.
fn parse_owner(header: &str) -> String {
    let bytes = header.as_bytes();
    // Locate the subject: after ` for ` at angle-depth 0 if present.
    let mut angle = 0usize;
    let mut subject_start = None;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => angle += 1,
            b'>' if i == 0 || bytes[i - 1] != b'-' => angle = angle.saturating_sub(1),
            b'f' if angle == 0 => {
                let is_word = header[i..].starts_with("for")
                    && (i == 0 || !is_ident_byte(bytes[i - 1]))
                    && !bytes.get(i + 3).copied().is_some_and(is_ident_byte);
                if is_word {
                    subject_start = Some(i + 3);
                }
            }
            _ => {}
        }
        i += 1;
    }
    let subject = match subject_start {
        Some(s) => &header[s..],
        None => {
            // Skip the keyword and any generic parameter list.
            let after_kw = header
                .trim_start()
                .trim_start_matches("impl")
                .trim_start_matches("trait");
            skip_generics(after_kw)
        }
    };
    // Cut the subject at a `where` clause or its own generics, then take
    // the last `::` path segment.
    let mut name = String::new();
    let mut last = String::new();
    for ch in subject.chars() {
        match ch {
            c if c.is_ascii_alphanumeric() || c == '_' => name.push(c),
            '<' | '{' => break,
            _ => {
                if !name.is_empty() {
                    if name == "where" {
                        break;
                    }
                    if !matches!(name.as_str(), "dyn" | "mut") {
                        last = std::mem::take(&mut name);
                    } else {
                        name.clear();
                    }
                }
            }
        }
    }
    if !name.is_empty() && name != "where" {
        last = name;
    }
    last
}

/// Skip a leading `<…>` generics group (angle-matched, `->` ignored).
fn skip_generics(s: &str) -> &str {
    let t = s.trim_start();
    if !t.starts_with('<') {
        return t;
    }
    let bytes = t.as_bytes();
    let mut angle = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'<' => angle += 1,
            b'>' if i == 0 || bytes[i - 1] != b'-' => {
                angle -= 1;
                if angle == 0 {
                    return &t[i + 1..];
                }
            }
            _ => {}
        }
    }
    t
}

/// Attach owners from the block structure: re-walk the file assigning
/// each item the innermost `impl`/`trait` owner its signature line sits
/// in. (Separated from `extract` so the scan logic stays linear.)
pub fn extract_with_owners(file: &SourceFile) -> Vec<FnItem> {
    let mut items = extract(file);
    // Re-derive owner spans with the same scanner, tracking Owner blocks.
    let owners = owner_spans(file);
    for item in &mut items {
        let mut best: Option<&(String, usize, usize)> = None;
        for span in &owners {
            if span.1 <= item.sig_line && item.sig_line <= span.2 {
                // Innermost = latest-starting enclosing span.
                if best.is_none_or(|b| span.1 >= b.1) {
                    best = Some(span);
                }
            }
        }
        item.owner = best.map(|s| s.0.clone());
    }
    items
}

/// `(owner, first_line, last_line)` for every `impl`/`trait` block.
fn owner_spans(file: &SourceFile) -> Vec<(String, usize, usize)> {
    let mut spans: Vec<(String, usize, usize)> = Vec::new();
    let mut stack: Vec<(usize, Option<usize>)> = Vec::new(); // (close_depth, span idx)
    let mut depth = 0usize;
    let mut pending: Option<(String, usize)> = None; // (header text, start line)
    for line in &file.lines {
        let bytes = line.code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if let Some((text, start)) = pending.as_mut() {
                if c == '{' {
                    spans.push((parse_owner(text), *start, line.number));
                    stack.push((depth, Some(spans.len() - 1)));
                    depth += 1;
                    pending = None;
                } else if c == ';' {
                    pending = None;
                } else {
                    text.push(c);
                }
                i += 1;
                continue;
            }
            match c {
                '{' => {
                    stack.push((depth, None));
                    depth += 1;
                    i += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while stack.last().is_some_and(|(d, _)| *d == depth) {
                        if let Some((_, Some(idx))) = stack.pop() {
                            spans[idx].2 = line.number;
                        }
                    }
                    i += 1;
                }
                _ if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    if matches!(&line.code[start..i], "impl" | "trait") {
                        pending = Some((String::new(), line.number));
                    }
                }
                _ => i += 1,
            }
        }
        if let Some((text, _)) = pending.as_mut() {
            text.push(' ');
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::sanitize;

    fn items_of(src: &str) -> Vec<FnItem> {
        extract_with_owners(&sanitize(src))
    }

    #[test]
    fn free_fn_with_span() {
        let items = items_of("fn alpha(x: usize) -> usize {\n    x + 1\n}\nfn beta() {}\n");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "alpha");
        assert_eq!((items[0].sig_line, items[0].end_line), (1, 3));
        assert_eq!(items[0].params, vec!["x"]);
        assert_eq!((items[1].sig_line, items[1].end_line), (4, 4));
        assert!(items[0].owner.is_none());
    }

    #[test]
    fn impl_methods_get_owner() {
        let src = "struct Foo;\nimpl Foo {\n    pub fn go(&self, n: u32) -> u32 { n }\n}\n\
                   impl std::fmt::Display for Foo {\n    fn fmt(&self) {}\n}\n";
        let items = items_of(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].owner.as_deref(), Some("Foo"));
        assert_eq!(items[0].params, vec!["n"]);
        assert_eq!(items[1].owner.as_deref(), Some("Foo"));
        assert_eq!(items[1].name, "fmt");
    }

    #[test]
    fn generic_impl_and_multiline_signature() {
        let src = "impl<T: Ord> Wrap<T>\nwhere\n    T: Clone,\n{\n    fn sort_key(\n        &self,\n        key: impl Fn(&T) -> u64,\n        n: usize,\n    ) -> u64 {\n        0\n    }\n}\n";
        let items = items_of(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].owner.as_deref(), Some("Wrap"));
        assert_eq!(items[0].params, vec!["key", "n"]);
        assert_eq!((items[0].sig_line, items[0].end_line), (5, 11));
    }

    #[test]
    fn tuple_pattern_params() {
        let items = items_of("fn f((mut a, b): (u32, u32), [c, d]: [u8; 2]) {}\n");
        assert_eq!(items[0].params, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn nested_fn_is_innermost_owner_of_its_lines() {
        let src = "fn outer() {\n    fn inner() {\n        work();\n    }\n    inner();\n}\n";
        let f = sanitize(src);
        let items = extract(&f);
        assert_eq!(items.len(), 2);
        let owners = line_owners(&items, f.lines.len());
        // Line 3 (work();) belongs to `inner`, line 5 to `outer`.
        assert_eq!(items[owners[2].unwrap()].name, "inner");
        assert_eq!(items[owners[4].unwrap()].name, "outer");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let items = items_of("struct S {\n    cb: fn(u64) -> u64,\n}\nfn real() {}\n");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "real");
    }

    #[test]
    fn trait_default_methods_and_declarations() {
        let src = "trait Greet {\n    fn hello(&self);\n    fn twice(&self, n: usize) -> usize {\n        n * 2\n    }\n}\n";
        let items = items_of(src);
        assert_eq!(items.len(), 2);
        assert!(!items[0].has_body);
        assert!(items[1].has_body);
        assert_eq!(items[1].owner.as_deref(), Some("Greet"));
    }

    #[test]
    fn array_const_in_signature_does_not_end_item() {
        let items = items_of("fn f(x: [u8; 4]) -> [u64; 2] {\n    [0, 0]\n}\n");
        assert_eq!(items.len(), 1);
        assert_eq!((items[0].sig_line, items[0].end_line), (1, 3));
    }

    #[test]
    fn test_module_items_flagged() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let items = items_of(src);
        assert!(!items[0].is_test);
        assert!(items[1].is_test);
    }
}
