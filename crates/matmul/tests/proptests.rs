//! Property tests for the matmul algorithms: every distributed engine
//! equals the serial oracle across random shapes, blockings and
//! processor counts; cost identities hold exactly.

use parqp_matmul::{
    rect_block, rect_block_nonsquare, sql_matmul, sql_matmul_rect, square_block, Matrix, RectMatrix,
};
use parqp_testkit::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rect_block_always_correct(n in 2usize..20, t in 1usize..20, seed in 0u64..1000) {
        let t = t.min(n);
        let a = Matrix::random(n, seed);
        let b = Matrix::random(n, seed + 1);
        let run = rect_block(&a, &b, t);
        prop_assert!(run.c.max_abs_diff(&a.multiply(&b)) < 1e-9);
        prop_assert_eq!(run.report.num_rounds(), 1);
    }

    #[test]
    fn square_block_always_correct(
        h in 1usize..6,
        blocks in 1usize..5,
        p in 1usize..40,
        seed in 0u64..1000,
    ) {
        let n = h * blocks; // h divides n by construction
        let a = Matrix::random(n, seed);
        let b = Matrix::random(n, seed + 1);
        let run = square_block(&a, &b, h, p);
        prop_assert!(run.c.max_abs_diff(&a.multiply(&b)) < 1e-9);
        // Round count: ⌈H³/p⌉ multiplication rounds, plus at most one
        // aggregation round.
        let mult = (h * h * h).div_ceil(p);
        let r = run.report.num_rounds();
        prop_assert!(r == mult || r == mult + 1, "r = {r}, mult = {mult}");
    }

    #[test]
    fn nonsquare_always_correct(
        m in 1usize..15,
        k in 1usize..15,
        n in 1usize..15,
        t1 in 1usize..15,
        t2 in 1usize..15,
        seed in 0u64..1000,
    ) {
        let (t1, t2) = (t1.min(m), t2.min(n));
        let a = RectMatrix::random_int(m, k, 5, 1.0, seed);
        let b = RectMatrix::random_int(k, n, 5, 1.0, seed + 1);
        let run = rect_block_nonsquare(&a, &b, t1, t2);
        prop_assert!(run.c.max_abs_diff(&a.multiply(&b)) < 1e-9);
        // L = (t1 + t2)·k exactly, for every processor.
        prop_assert_eq!(run.report.max_load_words(), ((t1 + t2) * k) as u64);
    }

    #[test]
    fn sql_engines_exact_on_integers(
        n in 1usize..14,
        p in 1usize..20,
        density in 0.05f64..1.0,
        seed in 0u64..1000,
    ) {
        let a = RectMatrix::random_int(n, n, 6, density, seed);
        let b = RectMatrix::random_int(n, n, 6, density, seed + 1);
        let run = sql_matmul_rect(&a, &b, p, seed);
        prop_assert_eq!(&run.c, &a.multiply(&b));
        // Round-1 communication is exactly nnz(A) + nnz(B).
        let sent = run.report.rounds[0].total_tuples() as usize;
        prop_assert_eq!(sent, a.nnz() + b.nnz());
    }

    #[test]
    fn square_and_sql_agree(n in 2usize..12, seed in 0u64..500) {
        let ai = Matrix::random_int(n, 7, seed);
        let bi = Matrix::random_int(n, 7, seed + 1);
        let sql = sql_matmul(&ai, &bi, 4, seed);
        let sq = square_block(&ai, &bi, if n % 2 == 0 { 2 } else { 1 }, 4);
        prop_assert!(sql.c.max_abs_diff(&sq.c) < 1e-9);
    }
}
