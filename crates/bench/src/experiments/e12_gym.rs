//! E12 — GYM rounds and the width/depth trade-off (slides 79–95).
//!
//! Table 1: vanilla GYM (`r = 3(n−1)`) versus the per-level optimized
//! GYM (`r = O(d)`) on stars (depth 1) and chains (depth n−1), matching
//! slides 80–94's round counts.
//!
//! Table 2: the slide 95 trade-off on a chain-12: GHDs of width `w` and
//! depth `⌈n/w⌉−1` (plus the balanced `w ≤ 3, d = O(log n)`
//! decomposition), with measured rounds and loads.

use crate::Table;
use parqp::data::generate;
use parqp::join::gym;
use parqp::prelude::*;
use parqp_data::Relation;

/// Run E12.
pub fn run() -> Vec<Table> {
    let p = 16usize;
    let n_tuples = 3000usize;

    let mut t1 = Table::new(
        "E12a (slides 80–94): vanilla vs optimized GYM rounds",
        &[
            "query",
            "tree depth",
            "vanilla r (=3(n-1))",
            "optimized r",
            "vanilla L",
            "optimized L",
        ],
    );
    let cases: Vec<(String, Query, Ghd)> = vec![
        (
            "star-4".into(),
            Query::star(4),
            Ghd::star_flat(&Query::star(4)),
        ),
        (
            "star-8".into(),
            Query::star(8),
            Ghd::star_flat(&Query::star(8)),
        ),
        (
            "chain-6".into(),
            Query::chain(6),
            Ghd::join_tree(&Query::chain(6)).expect("acyclic"),
        ),
        (
            "slide-64 tree".into(),
            Query::slide64_tree(),
            Ghd::join_tree(&Query::slide64_tree()).expect("acyclic"),
        ),
    ];
    for (name, q, tree) in &cases {
        let rels: Vec<Relation> = (0..q.num_atoms())
            .map(|i| generate::key_unique_pairs(n_tuples, 1, n_tuples as u64, 80 + i as u64))
            .collect();
        let v = gym::gym(q, &rels, tree, p, 5, false);
        let o = gym::gym(q, &rels, tree, p, 5, true);
        assert_eq!(v.gathered().canonical(), o.gathered().canonical());
        t1.row(vec![
            name.clone(),
            tree.depth().to_string(),
            v.report.num_rounds().to_string(),
            o.report.num_rounds().to_string(),
            v.report.max_load_tuples().to_string(),
            o.report.max_load_tuples().to_string(),
        ]);
    }

    // The balanced decomposition's internal bags cover *disconnected*
    // atom triples, so materializing them costs the full IN^w Cartesian
    // product — exactly the slide 95 trade-off. The sweep therefore uses
    // a small instance so the w=3 materialization stays laptop-sized.
    let n = 12usize;
    let small = 80usize;
    let q = Query::chain(n);
    let rels: Vec<Relation> = (0..n)
        .map(|i| generate::key_unique_pairs(small, 1, small as u64, 90 + i as u64))
        .collect();
    let mut t2 = Table::new(
        format!(
            "E12b (slide 95): width/depth trade-off on chain-{n}, p = {p}, N = {small} \
             (L grows like IN^w for disconnected bags)"
        ),
        &["GHD", "width w", "depth d", "measured r", "measured L"],
    );
    let mut ghds: Vec<(String, Ghd)> = vec![
        ("blocks w=1 (path)".into(), Ghd::chain_blocks(n, 1)),
        ("blocks w=2".into(), Ghd::chain_blocks(n, 2)),
        ("blocks w=3".into(), Ghd::chain_blocks(n, 3)),
        ("blocks w=6 (d=1)".into(), Ghd::chain_blocks(n, 6)),
        ("balanced (w≤3, d=log n)".into(), Ghd::chain_balanced(n)),
    ];
    let mut reference: Option<Relation> = None;
    for (name, ghd) in &mut ghds {
        let run = gym::gym_ghd(&q, &rels, ghd, p, 7);
        let canon = run.gathered().canonical();
        match &reference {
            None => reference = Some(canon),
            Some(r) => assert_eq!(&canon, r, "{name} disagrees"),
        }
        t2.row(vec![
            name.clone(),
            ghd.width().to_string(),
            ghd.depth().to_string(),
            run.report.num_rounds().to_string(),
            run.report.max_load_tuples().to_string(),
        ]);
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn star_rounds_match_slides() {
        let tables = super::run();
        let t1 = &tables[0];
        let star4 = &t1.rows[0];
        assert_eq!(star4[2], "9", "slide 89: vanilla star-4 runs in 9 rounds");
        assert_eq!(star4[3], "4", "slide 94: optimized star-4 runs in 4 rounds");
        let star8 = &t1.rows[1];
        assert_eq!(star8[2], "21", "vanilla grows with n");
        assert_eq!(star8[3], "4", "optimized stays at depth-bound rounds");
    }

    #[test]
    fn wider_bags_fewer_rounds() {
        let tables = super::run();
        let t2 = &tables[1];
        let rounds: Vec<usize> = t2.rows[..4]
            .iter()
            .map(|r| r[3].parse().expect("rounds"))
            .collect();
        assert!(
            rounds.windows(2).all(|w| w[1] <= w[0]),
            "rounds must fall as width grows: {rounds:?}"
        );
        // The balanced GHD beats the path decomposition.
        let path: usize = t2.rows[0][3].parse().expect("rounds");
        let balanced: usize = t2.rows[4][3].parse().expect("rounds");
        assert!(balanced < path);
    }
}
