//! E07 — the HyperCube speedup figure (slide 45).
//!
//! The fractional-share speedup is `p^{1/τ*}` — but real grids need
//! integer shares, so small `p` deviates (often favourably: a share of 2
//! on the right dimension can beat the fractional average) and the curve
//! settles onto `p^{1/τ*}` as `p` grows. We print the fractional ideal,
//! the integer-share prediction, and the measured load speedup for the
//! triangle query.

use crate::table::fmt;
use crate::Table;
use parqp::data::generate;
use parqp::join::multiway;
use parqp::model;
use parqp::prelude::*;
use parqp_lp::{plan_shares, predicted_load};

/// Run E07.
pub fn run() -> Vec<Table> {
    let n = 20_000usize;
    let q = Query::triangle();
    let g = generate::uniform(2, n, 1 << 40, 31);
    let rels = vec![g.clone(), g.clone(), g];
    let hg = q.hypergraph();
    let sizes = [n as u64; 3];
    let tau = model::tau_star(&q);

    let l1 = multiway::hypercube(&q, &rels, 1, 5)
        .report
        .max_load_tuples() as f64;
    let mut t = Table::new(
        format!("E07 (slide 45): HyperCube speedup vs p — triangle, N = {n}"),
        &[
            "p",
            "shares",
            "ideal p^(1/τ*)",
            "integer-share speedup",
            "measured speedup",
        ],
    );
    for p in [2usize, 4, 8, 16, 32, 64, 128, 256, 512] {
        let plan = plan_shares(&hg, &sizes, p);
        let pred = predicted_load(&hg, &sizes, &plan.shares);
        let run = multiway::hypercube_with_shares(&q, &rels, &plan.shares, 5);
        let measured = l1 / run.report.max_load_tuples() as f64;
        t.row(vec![
            p.to_string(),
            plan.shares
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("x"),
            fmt(model::hypercube_speedup(p as f64, tau)),
            fmt(n as f64 / pred),
            fmt(measured),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn speedup_grows_and_tracks_ideal_at_large_p() {
        let t = &super::run()[0];
        let rows = &t.rows;
        let measured: Vec<f64> = rows
            .iter()
            .map(|r| r[4].parse().expect("measured"))
            .collect();
        assert!(
            measured.windows(2).all(|w| w[1] >= w[0] * 0.95),
            "speedup must be (weakly) increasing: {measured:?}"
        );
        let last = rows.last().expect("rows");
        let ideal: f64 = last[2].parse().expect("ideal");
        let m: f64 = last[4].parse().expect("measured");
        assert!(
            m > 0.5 * ideal && m < 3.0 * ideal,
            "at p = 512, measured {m} should track ideal {ideal}"
        );
    }
}
