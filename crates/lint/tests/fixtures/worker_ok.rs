//! Negative fixture: a pure worker phase — local compute through a
//! helper, all results returned to the calling thread. No PQ4xx
//! findings, but the root and its reachable functions must still be
//! recorded (the analysis saw it, it didn't vacuously pass).

pub fn pure_phase(cluster: &Cluster, parts: Vec<Vec<u64>>) -> Vec<u64> {
    cluster.map(parts, |sid, part| weigh(sid, &part))
}

fn weigh(sid: usize, part: &[u64]) -> u64 {
    let mut acc = 0u64;
    for v in part {
        acc = acc.wrapping_add(*v ^ (sid as u64));
    }
    acc
}
