//! Guard: the workspace must stay buildable with zero network access.
//!
//! Every dependency in every manifest must resolve inside the repo —
//! either `path = "…"` directly, or `workspace = true` pointing at a
//! `[workspace.dependencies]` entry that is itself a path dependency.
//! If someone reintroduces a crates.io (or git) dependency, this test
//! names the offending manifest and line instead of letting the next
//! offline `cargo build` die on dependency resolution.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/testkit → two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("testkit lives two levels under the workspace root")
        .to_path_buf()
}

/// The `key = value` dependency entries of a named TOML section,
/// skipping blank lines and full-line comments. Good enough for this
/// workspace's hand-written manifests; not a general TOML parser.
fn section_entries(toml: &str, section: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == format!("[{section}]");
            continue;
        }
        if !in_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            out.push((key.trim().to_string(), value.trim().to_string()));
        }
    }
    out
}

fn is_offline_dep(value: &str) -> bool {
    value.contains("path =") || value.contains("path=") || value.contains("workspace = true")
}

#[test]
fn no_registry_dependencies_anywhere() {
    let root = workspace_root();
    let mut offenders = Vec::new();

    // Workspace-level table: everything must be a path dependency.
    let ws_manifest =
        std::fs::read_to_string(root.join("Cargo.toml")).expect("workspace Cargo.toml");
    for (name, value) in section_entries(&ws_manifest, "workspace.dependencies") {
        if !value.contains("path") {
            offenders.push(format!(
                "Cargo.toml [workspace.dependencies]: {name} = {value}"
            ));
        }
    }

    // Every member crate.
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .expect("crates/ directory")
        .map(|e| e.expect("readable dir entry").path().join("Cargo.toml"))
        .filter(|p| p.is_file())
        .collect();
    members.sort();
    assert!(
        members.len() >= 9,
        "expected at least 9 member crates, found {}: glob drifted?",
        members.len()
    );
    for manifest_path in &members {
        let toml = std::fs::read_to_string(manifest_path).expect("readable manifest");
        let rel = manifest_path
            .strip_prefix(&root)
            .expect("member under root")
            .display();
        for section in ["dependencies", "dev-dependencies", "build-dependencies"] {
            for (name, value) in section_entries(&toml, section) {
                if !is_offline_dep(&value) {
                    offenders.push(format!("{rel} [{section}]: {name} = {value}"));
                }
                if value.contains("git =") || value.contains("registry =") {
                    offenders.push(format!(
                        "{rel} [{section}]: {name} = {value} (non-path source)"
                    ));
                }
            }
        }
    }

    assert!(
        offenders.is_empty(),
        "registry/git dependencies would break the offline build:\n  {}",
        offenders.join("\n  ")
    );
}

#[test]
fn known_banned_crates_absent() {
    // The three crates the testkit replaced must never come back as
    // dependencies in any form (workspace entries included).
    let root = workspace_root();
    let mut manifests = vec![root.join("Cargo.toml")];
    for entry in std::fs::read_dir(root.join("crates")).expect("crates/ directory") {
        manifests.push(entry.expect("readable dir entry").path().join("Cargo.toml"));
    }
    for manifest_path in manifests.into_iter().filter(|p| p.is_file()) {
        let toml = std::fs::read_to_string(&manifest_path).expect("readable manifest");
        for banned in ["rand", "proptest", "criterion"] {
            for line in toml.lines() {
                let line = line.trim();
                if line.starts_with(&format!("{banned} ="))
                    || line.starts_with(&format!("{banned}="))
                {
                    panic!(
                        "{}: banned dependency `{banned}` reintroduced: {line}\n\
                         use parqp-testkit instead (crates/testkit)",
                        manifest_path.display()
                    );
                }
            }
        }
    }
}
