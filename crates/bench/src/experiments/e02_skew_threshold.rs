//! E02 — the effect of skew on hash partitioning (slides 24–26).
//!
//! Two tables:
//!
//! 1. the slide 26 **figure**, computed at the paper's own scale
//!    (`IN = 10¹¹`, 30% over the mean, 95% confidence): the largest
//!    tolerable uniform degree `d` as a function of `p`;
//! 2. an **empirical validation** at laptop scale: partition inputs of
//!    increasing uniform degree and watch the measured max-load ratio
//!    cross the predicted threshold.

use crate::table::fmt;
use crate::Table;
use parqp::data::generate;
use parqp::model;
use parqp_mpc::HashFamily;

/// Run E02.
pub fn run() -> Vec<Table> {
    // Table 1: the analytic curve of slide 26.
    let mut fig = Table::new(
        "E02a (slide 26 figure): degree threshold d vs p — IN = 1e11, ε = 0.3, δ = 0.05",
        &["p", "d threshold", "d (millions)"],
    );
    for p in (50..=1000).step_by(50) {
        let d = model::degree_threshold(1e11, f64::from(p), 0.3, 0.05);
        fig.row(vec![p.to_string(), fmt(d), format!("{:.2}", d / 1e6)]);
    }

    // Table 2: empirical transition at laptop scale.
    let input = 48_000usize;
    let p = 16usize;
    let eps = 0.3;
    let threshold = model::degree_threshold(input as f64, p as f64, eps, 0.05);
    let mut emp = Table::new(
        format!(
            "E02b: measured max-load ratio vs degree — IN = {input}, p = {p} \
             (predicted threshold d ≈ {})",
            fmt(threshold)
        ),
        &[
            "degree d",
            "L / (IN/p)",
            "Chernoff bound on Pr[ratio ≥ 1.3]",
        ],
    );
    for d in [1usize, 4, 16, 64, 256, 1024, 4096, 12_000] {
        let rel = generate::uniform_degree_pairs(input, d, 0, 1 << 30, d as u64);
        let h = HashFamily::new(7, 1);
        let mut counts = vec![0u64; p];
        for row in rel.iter() {
            counts[h.hash(0, row[0], p)] += 1;
        }
        let ratio = *counts.iter().max().expect("p > 0") as f64 / (rel.len() as f64 / p as f64);
        let bound = model::hash_partition_tail_bound(rel.len() as f64, p as f64, d as f64, eps);
        emp.row(vec![d.to_string(), format!("{ratio:.3}"), fmt(bound)]);
    }
    vec![fig, emp]
}

#[cfg(test)]
mod tests {
    #[test]
    fn curve_decreases_and_transition_happens() {
        let tables = super::run();
        let fig = &tables[0];
        let first: f64 = fig.rows.first().expect("rows")[1]
            .parse()
            .unwrap_or(f64::MAX);
        let last: f64 = fig.rows.last().expect("rows")[1].parse().unwrap_or(0.0);
        assert!(first > 10.0 * last, "threshold must fall steeply with p");

        let emp = &tables[1];
        let lo: f64 = emp.rows.first().expect("rows")[1].parse().expect("ratio");
        let hi: f64 = emp.rows.last().expect("rows")[1].parse().expect("ratio");
        assert!(lo < 1.5, "degree-1 partitioning is balanced: {lo}");
        assert!(hi > 2.0, "extreme degrees overload one server: {hi}");
    }
}
