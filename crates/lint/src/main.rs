//! The `parqp-lint` binary: `cargo run -p parqp-lint [-- OPTIONS]`.
//!
//! Exit codes: 0 = clean, 1 = diagnostics found, 2 = usage/setup error.

use std::path::PathBuf;

use parqp_lint::ratchet::Baseline;

const USAGE: &str = "\
parqp-lint — static analysis for the parqp workspace

USAGE:
    cargo run -p parqp-lint [-- OPTIONS]

OPTIONS:
    --fix-baseline      rewrite lint/baseline.toml with the current
                        panic-surface counts instead of checking
    --root <PATH>       workspace root (default: auto-detected)
    --baseline <PATH>   ratchet baseline (default: <root>/lint/baseline.toml)
    --format <FMT>      output format: text (default) or json
    --out <PATH>        also write the JSON report to PATH (written even
                        when findings fail the run, so CI can archive it)
    -q, --quiet         print only diagnostics, no summary
    -h, --help          this text

EXIT CODES:
    0   clean
    1   findings reported
    2   usage or setup error (bad flag, unreadable baseline, ...)

Suppress a finding inline with `// parqp-lint: allow(PQxxx)`; see
DESIGN.md § \"Static analysis & determinism invariants\" for rule docs.";

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Text,
    Json,
}

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    fix_baseline: bool,
    quiet: bool,
    format: Format,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: parqp_lint::workspace_root(),
        baseline: None,
        fix_baseline: false,
        quiet: false,
        format: Format::Text,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fix-baseline" => opts.fix_baseline = true,
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a path")?);
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--format" => {
                opts.format = match args.next().ok_or("--format needs text|json")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (want text|json)")),
                };
            }
            "--out" => {
                opts.out = Some(PathBuf::from(args.next().ok_or("--out needs a path")?));
            }
            "-q" | "--quiet" => opts.quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn run() -> Result<i32, String> {
    let opts = parse_args()?;
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| parqp_lint::baseline_path(&opts.root));

    if opts.fix_baseline {
        let report = parqp_lint::lint_workspace(&opts.root, None)?;
        let baseline = Baseline {
            crates: report.panic_counts,
        };
        if let Some(dir) = baseline_path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
        std::fs::write(&baseline_path, baseline.serialize())
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        if !opts.quiet {
            println!(
                "wrote {} ({} crates, {} files scanned)",
                baseline_path.display(),
                baseline.crates.len(),
                report.files_scanned
            );
        }
        // Non-ratchet diagnostics still fail a --fix-baseline run: fixing
        // the counters must not paper over determinism/layering findings.
        for d in &report.diagnostics {
            eprintln!("{d}");
        }
        return Ok(if report.diagnostics.is_empty() { 0 } else { 1 });
    }

    let baseline = Baseline::parse(&std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "{}: {e} (run --fix-baseline to create it)",
            baseline_path.display()
        )
    })?)?;
    let report = parqp_lint::lint_workspace(&opts.root, Some(&baseline))?;

    // The JSON artifact is written before the exit decision, so CI can
    // archive the report of a *failing* run.
    if let Some(out) = &opts.out {
        if let Some(dir) = out.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            }
        }
        std::fs::write(out, parqp_lint::render_json(&report))
            .map_err(|e| format!("{}: {e}", out.display()))?;
    }

    if opts.format == Format::Json {
        print!("{}", parqp_lint::render_json(&report));
        return Ok(if report.diagnostics.is_empty() { 0 } else { 1 });
    }

    for d in &report.diagnostics {
        eprintln!("{d}");
    }
    if !opts.quiet {
        for s in &report.stale_baseline {
            eprintln!(
                "note: panic surface shrank ({s}); run --fix-baseline to tighten the ratchet"
            );
        }
        if report.diagnostics.is_empty() {
            println!(
                "parqp-lint: clean ({} files, {} crates, {} worker roots checked)",
                report.files_scanned,
                report.panic_counts.len(),
                report.worker_roots.len()
            );
        } else {
            eprintln!("parqp-lint: {} finding(s)", report.diagnostics.len());
        }
    }
    Ok(if report.diagnostics.is_empty() { 0 } else { 1 })
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("parqp-lint: {e}");
            std::process::exit(2);
        }
    }
}
