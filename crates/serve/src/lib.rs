//! # parqp-serve — a deterministic multi-tenant workload driver
//!
//! Every other component of this workspace measures *one* algorithm run
//! at a time. This crate is the serving layer the north star asks for:
//! a long-lived [`parqp_mpc::Cluster`] absorbing a seeded multi-tenant
//! query stream, with cross-query work reuse through an explicit shared
//! cache and an exact per-tenant cost ledger.
//!
//! ## Model
//!
//! * **Tick clock** — arrivals happen on a logical tick clock
//!   (`0..ticks`). Each `(tenant, tick)` slot draws its arrivals from
//!   its own seeded RNG, so the schedule is a pure function of the
//!   configuration: no slot's draws depend on any other slot's.
//! * **Skew** — tenants pick a query [`templates::Template`] through a
//!   Zipf(`zipf_q`) sampler and a data-key *group* through a
//!   Zipf(`zipf_data`) sampler, the skew model of "Skew in Parallel
//!   Query Processing" (PAPERS.md). Popular template+group pairs repeat
//!   — exactly the repetition the shared cache exploits.
//! * **Shared-plan cache** — a query's expensive phase is
//!   hash-partitioning its template's base relation across the cluster.
//!   [`cache::PlanCache`] keys the partitioned relation by the
//!   canonical `(template, group, shares)` triple; hits skip the base
//!   scan and the partition exchange entirely. Eviction is
//!   deterministic LRU by last-used tick with an exact
//!   hit/miss/insert/evict ledger ([`cache::CacheStats`]), mirroring
//!   the store's page-IO ledger.
//! * **Accounting** — every ledger round of the long-lived cluster is
//!   attributed to exactly one query via
//!   [`parqp_mpc::Cluster::report_since`], so per-tenant totals
//!   reconcile *exactly* with the global [`MetricsRegistry`]
//!   (`tests/serve_reconciliation.rs` asserts this).
//! * **Faults under load** — an optional seeded
//!   [`parqp_faults::FaultPlan`] fires while the stream replays;
//!   recovery overhead lands in whichever query's rounds it inflates,
//!   measuring fault tolerance under load instead of per-experiment.
//!
//! Caching, paging, execution mode and fault injection are all purely
//! observational: per-query output digests are byte-identical with the
//! cache on or off, serial or parallel, faulted or fault-free
//! (`tests/serve_differential.rs`).
//!
//! Only this crate may construct plan-cache entries and tenant ledgers
//! (lint rule PQ110 confines `PlanCache`/`TenantLedger` to `serve`, the
//! way PQ104 confines `LoadReport` fabrication to `mpc`).
//!
//! * **Time-series observability** — [`driver::replay_observed`] runs
//!   the same replay under an installed `parqp_obs` recorder: every
//!   served query is emitted as a `QueryObs` (its exact ledger delta,
//!   cache outcome, and page-IO delta) and folded into fixed-width tick
//!   windows. Only this crate may emit observations (lint rule PQ111);
//!   consumers read the returned `SeriesReport` — exporters, the `parqp
//!   dash` dashboard, and SLO burn-rate gates live in `parqp-obs`.
//!
//! [`MetricsRegistry`]: parqp_metrics::MetricsRegistry

pub mod cache;
pub mod driver;
pub mod report;
pub mod templates;
pub mod workload;

pub use cache::{CacheStats, PlanCache};
pub use driver::{replay, replay_observed, FaultSetup, ServeConfig};
pub use report::{QueryRecord, ServeReport, TenantStats};
pub use templates::{Template, TEMPLATES};
pub use workload::{schedule, QueryArrival};
