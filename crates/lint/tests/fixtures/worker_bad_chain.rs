//! Mutation fixture: the closure itself looks clean, but a helper's
//! transitive callee emits metrics — the PQ401 diagnostic must carry
//! the propagation chain through `tally` to `announce`.

pub fn chained_phase(cluster: &Cluster, parts: Vec<Vec<u64>>) -> Vec<u64> {
    cluster.map(parts, |_sid, part| tally(&part))
}

fn tally(part: &[u64]) -> u64 {
    let n = part.len() as u64;
    announce(n);
    n
}

fn announce(n: u64) {
    metrics::emit(n);
}
