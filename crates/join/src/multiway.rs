//! The HyperCube (Shares) one-round multiway join (slides 34–44).
//!
//! Servers form a `p₁ × … × p_k` grid, one dimension per query variable,
//! with independent hash functions `h₁ … h_k`. A tuple of atom
//! `S_j(x_{j1}, x_{j2}, …)` is sent to every server whose coordinates
//! agree with `h_{ji}(t[x_{ji}])` on the atom's variables (`*` on the
//! rest); each server then evaluates the query on what it received. Every
//! potential output `(a₁ … a_k)` is examined by exactly one server —
//! `(h₁(a₁), …, h_k(a_k))` — so the result is produced exactly once.
//!
//! The shares are chosen by the LP of slide 38 (see
//! [`parqp_lp::plan_shares`]); on skew-free inputs with equal sizes the
//! load is `N / p^{1/τ*}` w.h.p. (slide 40), e.g. `N/p^{2/3}` for the
//! triangle query (slide 36).

use crate::common::{scatter, JoinRun, Tagged};
use parqp_data::paged::RouteScan;
use parqp_data::Relation;
use parqp_mpc::{metrics, trace, Cluster, Grid, HashFamily};
use parqp_query::{evaluate, Query};

/// Run the HyperCube algorithm with LP-optimal integer shares.
///
/// ```
/// use parqp_join::multiway::hypercube;
/// use parqp_query::Query;
/// use parqp_data::Relation;
///
/// let q = Query::triangle();
/// let r = Relation::from_rows(2, [[1, 2], [4, 5]]);
/// let s = Relation::from_rows(2, [[2, 3]]);
/// let t = Relation::from_rows(2, [[3, 1]]);
/// let run = hypercube(&q, &[r, s, t], 8, 42);
/// assert_eq!(run.gathered().to_rows(), vec![vec![1, 2, 3]]);
/// assert_eq!(run.report.num_rounds(), 1);
/// ```
///
/// An empty atom makes the join empty: the run returns `p` empty
/// fragments and zero communication rounds.
///
/// # Panics
/// Panics if inputs mismatch the query.
pub fn hypercube(query: &Query, rels: &[Relation], p: usize, seed: u64) -> JoinRun {
    if rels.iter().any(Relation::is_empty) {
        return JoinRun {
            outputs: vec![Relation::new(query.num_vars()); p],
            report: parqp_mpc::LoadReport::empty(p),
        };
    }
    let sizes: Vec<u64> = rels.iter().map(|r| r.len() as u64).collect();
    let shares = if p >= 2 {
        parqp_lp::plan_shares(&query.hypergraph(), &sizes, p).shares
    } else {
        vec![1; query.num_vars()]
    };
    if metrics::is_enabled() {
        // Slide 40: L = Σ_j N_j / ∏_{i ∈ vars(S_j)} p_i at the chosen
        // shares — the grid-mean load, which equals IN/p^{1/τ*} for
        // equal sizes at the LP optimum (N/p^{2/3} for the triangle).
        let predicted: f64 = query
            .atoms()
            .iter()
            .zip(&sizes)
            .map(|(atom, &n)| {
                let replicated: f64 = atom
                    .vars
                    .iter()
                    .map(|&v| shares.get(v).map_or(1.0, |&s| s as f64))
                    .product();
                n as f64 / replicated
            })
            .sum();
        metrics::announce(&metrics::PaperBound::tuples("hypercube", predicted, 1));
    }
    hypercube_with_shares(query, rels, &shares, seed)
}

/// Run the HyperCube algorithm with explicit shares (one per variable).
///
/// # Panics
/// Panics if `shares.len() != query.num_vars()` or any share is zero.
pub fn hypercube_with_shares(
    query: &Query,
    rels: &[Relation],
    shares: &[usize],
    seed: u64,
) -> JoinRun {
    assert_eq!(rels.len(), query.num_atoms(), "one relation per atom");
    for (a, r) in query.atoms().iter().zip(rels) {
        assert_eq!(a.arity(), r.arity(), "arity mismatch for atom {}", a.name);
    }
    assert_eq!(shares.len(), query.num_vars(), "one share per variable");

    let grid = Grid::new(shares.to_vec());
    let mut cluster = Cluster::new(grid.len());
    let h = HashFamily::new(seed, query.num_vars());

    let shuffle = trace::span("hypercube/shuffle");
    let mut ex = cluster.exchange::<Tagged>();
    for (j, rel) in rels.iter().enumerate() {
        let atom = &query.atoms()[j];
        for (sid, part) in scatter(rel, grid.len()).into_iter().enumerate() {
            ex.set_sender(sid);
            let scan = RouteScan::new(sid, &part);
            for row in scan.iter() {
                let mut partial: Vec<Option<usize>> = vec![None; query.num_vars()];
                for (pos, &v) in atom.vars.iter().enumerate() {
                    partial[v] = Some(h.hash(v, row[pos], shares[v]));
                }
                ex.send_matching(&grid, &partial, Tagged::new(j as u32, row.to_vec()));
            }
        }
    }
    let inboxes = ex.finish();
    drop(shuffle);

    let evaluate_span = trace::span("hypercube/evaluate");
    let outputs = cluster.map(inboxes, |_, inbox| {
        let mut fragments: Vec<Relation> = query
            .atoms()
            .iter()
            .map(|a| Relation::new(a.arity()))
            .collect();
        for t in inbox {
            fragments[t.tag as usize].push(&t.row);
        }
        evaluate(query, &fragments)
    });
    drop(evaluate_span);
    JoinRun {
        outputs,
        report: cluster.report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parqp_data::generate;

    fn oracle(query: &Query, rels: &[Relation]) -> Relation {
        evaluate(query, rels)
    }

    #[test]
    fn triangle_small_exact() {
        let q = Query::triangle();
        let r = Relation::from_rows(2, [[1, 2], [4, 5], [1, 9]]);
        let s = Relation::from_rows(2, [[2, 3], [5, 6]]);
        let t = Relation::from_rows(2, [[3, 1], [6, 4]]);
        let run = hypercube(&q, &[r.clone(), s.clone(), t.clone()], 8, 99);
        let expect = oracle(&q, &[r, s, t]);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        assert_eq!(run.output_size(), expect.len(), "no duplicate outputs");
        assert_eq!(run.report.num_rounds(), 1);
    }

    #[test]
    fn triangle_random_graph_matches_oracle() {
        let q = Query::triangle();
        let g = generate::random_symmetric_graph(60, 600, 7);
        let rels = vec![g.clone(), g.clone(), g];
        let run = hypercube(&q, &rels, 27, 3);
        let expect = oracle(&q, &rels);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        assert_eq!(run.output_size(), expect.len());
    }

    #[test]
    fn triangle_load_scales_as_p_to_two_thirds() {
        // Slide 36: L = Θ(N/p^{2/3}); each tuple is replicated p^{1/3}
        // times, so the per-server load is ≈ 3·N/p^{2/3}.
        let q = Query::triangle();
        let n = 6000;
        let g = generate::uniform(2, n, 1 << 40, 21);
        let rels = vec![g.clone(), g.clone(), g];
        let run8 = hypercube(&q, &rels, 8, 5);
        let run64 = hypercube(&q, &rels, 64, 5);
        let l8 = run8.report.max_load_tuples() as f64;
        let l64 = run64.report.max_load_tuples() as f64;
        // p × 8 ⇒ load ÷ 4 (two-thirds power), modulo concentration noise.
        let ratio = l8 / l64;
        assert!(
            (3.0..5.0).contains(&ratio),
            "load ratio {ratio} (l8={l8}, l64={l64}) not ≈ 4"
        );
    }

    #[test]
    fn two_way_reduces_to_hash_join_shares() {
        let q = Query::two_way();
        let r = generate::uniform(2, 400, 50, 31);
        let s = generate::uniform(2, 400, 50, 32);
        let run = hypercube(&q, &[r.clone(), s.clone()], 8, 11);
        let expect = oracle(&q, &[r, s]);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        // All shares on the join variable ⇒ no replication.
        assert_eq!(run.report.total_tuples(), 800);
    }

    #[test]
    fn product_query_uses_grid() {
        let q = Query::product();
        let r = generate::uniform(1, 100, 1000, 41);
        let s = generate::uniform(1, 100, 1000, 42);
        let run = hypercube(&q, &[r.clone(), s.clone()], 16, 13);
        assert_eq!(run.output_size(), 100 * 100);
        let l = run.report.max_load_tuples() as f64;
        // 2·√(10⁴/16) = 50, allow hashing imbalance.
        assert!(l < 100.0, "L = {l}");
    }

    #[test]
    fn chain_query_matches_oracle() {
        let q = Query::chain(4);
        let rels: Vec<Relation> = (0..4)
            .map(|i| generate::uniform(2, 200, 40, 50 + i as u64))
            .collect();
        let run = hypercube(&q, &rels, 16, 17);
        let expect = oracle(&q, &rels);
        assert_eq!(run.gathered().canonical(), expect.canonical());
        assert_eq!(run.output_size(), expect.len());
    }

    #[test]
    fn explicit_shares_respected() {
        let q = Query::triangle();
        let r = generate::uniform(2, 100, 30, 61);
        let rels = vec![r.clone(), r.clone(), r];
        let run = hypercube_with_shares(&q, &rels, &[2, 2, 2], 19);
        assert_eq!(run.report.servers, 8);
        // Each tuple replicated along its free dimension: total = 3·100·2.
        assert_eq!(run.report.total_tuples(), 600);
    }

    #[test]
    fn empty_relation_empty_run() {
        let q = Query::triangle();
        let r = Relation::from_rows(2, [[1, 2]]);
        let run = hypercube(&q, &[r.clone(), Relation::new(2), r], 8, 7);
        assert_eq!(run.output_size(), 0);
        assert_eq!(run.outputs.len(), 8);
        assert_eq!(run.report.num_rounds(), 0);
    }

    #[test]
    fn single_server_fallback() {
        let q = Query::triangle();
        let r = Relation::from_rows(2, [[1, 2]]);
        let s = Relation::from_rows(2, [[2, 3]]);
        let t = Relation::from_rows(2, [[3, 1]]);
        let run = hypercube(&q, &[r, s, t], 1, 7);
        assert_eq!(run.output_size(), 1);
    }

    #[test]
    fn semijoin_pair_matches_oracle() {
        let q = Query::semijoin_pair();
        let r = generate::unary_range(50);
        let s = generate::uniform(2, 300, 80, 71);
        let t = generate::unary_range(60);
        let run = hypercube(&q, &[r.clone(), s.clone(), t.clone()], 9, 23);
        let expect = oracle(&q, &[r, s, t]);
        assert_eq!(run.gathered().canonical(), expect.canonical());
    }
}
