//! Wall-clock benches (parqp-testkit harness) for the matrix-multiplication experiments (E14).

use parqp::matmul::{rect_block, sql_matmul, square_block, Matrix};
use parqp_testkit::bench::{BenchmarkId, Criterion};
use parqp_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let n = 64;
    let a = Matrix::random(n, 1);
    let b = Matrix::random(n, 2);
    let mut grp = c.benchmark_group("e14_matmul");
    grp.sample_size(10);
    grp.bench_function("serial_oracle", |bch| {
        bch.iter(|| black_box(a.multiply(&b)))
    });
    for t in [8usize, 16] {
        grp.bench_with_input(BenchmarkId::new("rect_block", t), &t, |bch, &t| {
            bch.iter(|| black_box(rect_block(&a, &b, t)))
        });
    }
    for (h, p) in [(8usize, 64usize), (4, 16)] {
        grp.bench_with_input(
            BenchmarkId::new("square_block", format!("h{h}_p{p}")),
            &(h, p),
            |bch, &(h, p)| bch.iter(|| black_box(square_block(&a, &b, h, p))),
        );
    }
    grp.bench_function("sql_matmul_p16", |bch| {
        bch.iter(|| black_box(sql_matmul(&a, &b, 16, 5)))
    });
    grp.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
